//! The full-system simulator: one detailed core in front of the Table I
//! memory hierarchy, with the configured prefetcher wired in exactly as
//! Fig. 8 describes — streamer at the L2 (or L1 for the monolithic
//! variant), MPP at the memory controller behind the MRB's C-bit, property
//! prefetches checked against the coherence engine before touching DRAM.

use crate::config::{PrefetcherKind, SystemConfig};
use droplet_cache::{CacheStats, FillInfo, SetAssocCache, TypedCounter};
use droplet_cpu::{AccessResponse, CoreEngine, CoreResult, MemorySystem, MshrFile, ServiceLevel};
use droplet_gap::TraceBundle;
use droplet_mem::{Dram, DramStats, Mrb, MrbEntry};
use droplet_obs::{fnv1a, ObsRecorder, ObsSnapshot, RunJournal, RunManifest};
use droplet_prefetch::{
    AccessEvent, EventKind, GhbPrefetcher, Mpp, MppCandidate, MppStats, PrefetchRequest,
    Prefetcher, StreamPrefetcher, VldpPrefetcher,
};
use droplet_trace::{
    Cycle, DataType, FxHashMap, MemOp, OpId, PageEntry, PageTable, SliceSource, Tlb, TraceSource,
    VirtAddr, LINES_PER_PAGE, PAGE_BYTES,
};

/// Orchestration-level statistics not owned by any single component.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemStats {
    /// Core-side prefetch requests dropped for unmapped pages.
    pub prefetch_unmapped_drops: u64,
    /// Core-side prefetch requests already resident at their fill level.
    pub prefetch_redundant: u64,
    /// MPP property prefetches found on-chip and copied LLC → L2.
    pub mpp_copied_from_llc: u64,
    /// MPP property prefetches already in the destination L2 (or L1).
    pub mpp_redundant: u64,
    /// Dirty-line write-backs issued to DRAM.
    pub writebacks: u64,
    /// DTLB misses observed on the demand path.
    pub dtlb_misses: u64,
    /// Prefetched lines demanded while on chip (Fig. 14 numerator).
    pub prefetch_useful: TypedCounter,
    /// Prefetched lines evicted off-chip without any demand use.
    pub prefetch_wasted: TypedCounter,
    /// Adaptive DROPLET only: the mode the controller locked into
    /// (`Some(true)` = stayed data-aware, `Some(false)` = fell back to the
    /// streamMPP1 arrangement, `None` = not adaptive / still probing).
    pub adaptive_locked_data_aware: Option<bool>,
}

impl SystemStats {
    /// Line-level prefetch accuracy for `dtype`: the fraction of prefetched
    /// lines that saw a demand use anywhere on chip before leaving the chip
    /// (the Fig. 14 metric).
    pub fn prefetch_accuracy(&self, dtype: droplet_trace::DataType) -> f64 {
        let used = self.prefetch_useful.get(dtype);
        let bad = self.prefetch_wasted.get(dtype);
        if used + bad == 0 {
            0.0
        } else {
            used as f64 / (used + bad) as f64
        }
    }
}

/// One `pf_page_memo` entry: `(data type, page entry, region-end address)`,
/// or `None` for pages outside every region.
type PagePfMemo = Option<(DataType, PageEntry, u64)>;

/// The simulated system; implements [`MemorySystem`] for the core model.
pub struct System<'a> {
    cfg: SystemConfig,
    bundle: &'a TraceBundle,
    page_table: PageTable,
    dtlb: Tlb,
    l1: SetAssocCache,
    l2: Option<SetAssocCache>,
    l3: SetAssocCache,
    dram: Dram,
    mrb: Mrb,
    core_pf: Option<Box<dyn Prefetcher>>,
    mpp: Option<Mpp>,
    stats: SystemStats,
    pf_buf: Vec<PrefetchRequest>,
    mpp_buf: Vec<MppCandidate>,
    /// In-flight demand misses (MSHR occupancy).
    mshr: MshrFile,
    /// One-entry translation memo: the previous demand access's (vpn,
    /// entry). Graph traversals are bursty within a page (a vertex's
    /// neighbor list spans consecutive lines), so consecutive same-page
    /// accesses skip even the DTLB scan. Safe because nothing else touches
    /// the DTLB between demand accesses: a memo hit implies the page is the
    /// DTLB's MRU entry, so the skipped touch could not have changed the
    /// eviction order, and translations are immutable once created.
    same_page: Option<(u64, PageEntry)>,
    /// Per-page translation memo for the prefetch request path: vpn →
    /// `(data type, page entry, region-end address)`, or `None` for pages
    /// outside every region. Regions have page-aligned bases and guard
    /// pages, so a page serves at most one region and one data type — but
    /// a region's *last* page is only mapped up to `region.end()`, which
    /// the third field records so tail lines past it still drop as
    /// unmapped. A pure cache over immutable mappings: rebuilt empty on
    /// fork rather than snapshotted, and never consulted on the demand
    /// path (which has its own DTLB + `same_page` memo and must count
    /// walks).
    pf_page_memo: FxHashMap<u64, PagePfMemo>,
    /// Demand-promotion latency cap; derived from `cfg` only, computed once.
    promote_budget: Cycle,
    /// Probing controller for the adaptive DROPLET extension.
    adaptive: Option<AdaptiveState>,
    /// Epoch sampler, present only when `cfg.obs` is set. Boxed so the
    /// disabled case costs one pointer in the `System` and a single
    /// `is_some` branch per demand access.
    obs: Option<Box<ObsRecorder>>,
    /// Retire-clock cycle at which the measurement window opened (0 until
    /// `warmup_done` runs).
    warmup_boundary: Cycle,
    /// Whether prefetch engines (and the adaptive controller) are live.
    /// `false` until `warmup_done`: warm-up is demand-only, which makes the
    /// warmed state a pure function of the warmup-relevant configuration
    /// ([`SystemConfig::warmup_key`]) and lets forked sweeps share one
    /// snapshot across every prefetcher configuration.
    pf_enabled: bool,
    /// Injected hot-lane fault for the conformance self-test; `None` in
    /// production. See [`HotLaneMutation`].
    hot_mutation: HotLaneMutation,
}

/// Epoch-probing state for adaptive DROPLET (Section VII-B extension):
/// measure mean demand-miss service latency with the data-aware streamer,
/// then with the conventional streamer, then lock the faster mode.
#[derive(Debug, Clone, Copy)]
struct AdaptiveState {
    epoch_misses: u64,
    misses: u64,
    latency_sum: u64,
    /// 0 = probing data-aware, 1 = probing conventional, 2 = locked.
    phase: u8,
    probe_data_aware_avg: f64,
}

impl<'a> System<'a> {
    /// Builds the system for one workload. All graph pages are pre-touched
    /// (the paper runs the graph-reading phase before the ROI), so page
    /// mappings exist; the small DTLB still produces realistic miss
    /// behaviour. The pre-touch uses the non-counting [`PageTable::populate`]
    /// path, so the walk counter reflects demand walks only.
    pub fn new(cfg: SystemConfig, bundle: &'a TraceBundle) -> Self {
        let mut page_table = PageTable::new();
        for region in bundle.space.regions() {
            let mut addr = region.base();
            while addr < region.end() {
                page_table.populate(addr, &bundle.space);
                addr = addr.add_bytes(PAGE_BYTES);
            }
        }

        let core_pf = build_core_pf(&cfg);
        let mpp = build_mpp(&cfg, bundle);

        let cfg_mshrs = cfg.mshrs.max(1);
        let promote_budget = demand_promotion_budget(&cfg);
        let adaptive_state = build_adaptive(&cfg);
        let obs = cfg.obs.map(|c| Box::new(ObsRecorder::new(c)));
        System {
            dtlb: Tlb::new(cfg.dtlb_entries),
            l1: SetAssocCache::new(cfg.l1.clone()),
            l2: cfg.l2.clone().map(SetAssocCache::new),
            l3: SetAssocCache::new(cfg.l3.clone()),
            dram: Dram::new(cfg.dram.clone()),
            mrb: Mrb::new(cfg.mrb_entries),
            core_pf,
            mpp,
            cfg,
            bundle,
            page_table,
            promote_budget,
            stats: SystemStats::default(),
            pf_buf: Vec::with_capacity(64),
            mpp_buf: Vec::with_capacity(64),
            mshr: MshrFile::new(cfg_mshrs),
            same_page: None,
            pf_page_memo: FxHashMap::default(),
            adaptive: adaptive_state,
            obs,
            warmup_boundary: 0,
            pf_enabled: false,
            hot_mutation: HotLaneMutation::None,
        }
    }

    /// Captures everything that evolved during warm-up into an owned,
    /// `'static` snapshot. Meant to be taken at the warm-up boundary
    /// (before `warmup_done`); [`System::fork`] then restores it under any
    /// configuration sharing the same [`SystemConfig::warmup_key`].
    pub fn snapshot(&self) -> SystemSnapshot {
        debug_assert!(
            self.mrb.is_empty(),
            "MRB must be empty at the warm-up boundary under demand-only warm-up"
        );
        SystemSnapshot {
            cfg: self.cfg.clone(),
            page_table: self.page_table.clone(),
            dtlb: self.dtlb.clone(),
            l1: self.l1.clone(),
            l2: self.l2.clone(),
            l3: self.l3.clone(),
            dram: self.dram.clone(),
            mshr: self.mshr.clone(),
            same_page: self.same_page,
            stats: self.stats,
            core_pf: self.core_pf.clone(),
            mpp: self.mpp.clone(),
            adaptive: self.adaptive,
            warmup_boundary: self.warmup_boundary,
            pf_enabled: self.pf_enabled,
        }
    }

    /// Rebuilds a warmed system from `snap` under `cfg`, swapping in the
    /// fork-safe knobs (prefetcher wiring, adaptive controller, obs).
    ///
    /// Bit-exactness argument: warm-up is demand-only, so at the boundary
    /// (a) the predictors, MPP, and adaptive controller are pristine —
    /// when the fork's prefetcher wiring differs from the parent's they are
    /// simply built fresh, which is identical to what a from-scratch run
    /// would hold; (b) the MRB is empty, so it is rebuilt at the fork's
    /// `mrb_entries`; (c) the sampler never ran, so it starts fresh.
    /// Everything demand-path — caches, DTLB, page table, DRAM, MSHRs, the
    /// same-page memo — is restored verbatim.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` disagrees with the snapshot's configuration on any
    /// warmup-relevant field ([`SystemConfig::warmup_key`]); such sweeps
    /// must fall back to full replay.
    pub fn fork(snap: &SystemSnapshot, cfg: &SystemConfig, bundle: &'a TraceBundle) -> Self {
        Self::fork_mutated(snap, cfg, bundle, ForkMutation::None)
    }

    /// [`System::fork`] with an injected snapshot-restore fault, for the
    /// conformance self-test that proves the fork-vs-scratch differ catches
    /// incomplete snapshots.
    #[doc(hidden)]
    pub fn fork_mutated(
        snap: &SystemSnapshot,
        cfg: &SystemConfig,
        bundle: &'a TraceBundle,
        mutation: ForkMutation,
    ) -> Self {
        assert_eq!(
            snap.cfg.warmup_key(),
            cfg.warmup_key(),
            "fork requires identical warmup-relevant configuration"
        );
        let same_wiring = prefetch_wiring_eq(&snap.cfg, cfg);
        let core_pf = if same_wiring {
            snap.core_pf.clone()
        } else {
            build_core_pf(cfg)
        };
        let mpp = if same_wiring {
            snap.mpp.clone()
        } else {
            build_mpp(cfg, bundle)
        };
        let adaptive = if same_wiring {
            snap.adaptive
        } else {
            build_adaptive(cfg)
        };
        let dtlb = match mutation {
            ForkMutation::SkipDtlb => Tlb::new(cfg.dtlb_entries),
            _ => snap.dtlb.clone(),
        };
        let same_page = match mutation {
            // A fresh DTLB invalidates the memo's MRU guarantee too.
            ForkMutation::SkipDtlb => None,
            _ => snap.same_page,
        };
        let l1 = match mutation {
            ForkMutation::SkipL1 => SetAssocCache::new(cfg.l1.clone()),
            _ => snap.l1.clone(),
        };
        System {
            dtlb,
            l1,
            l2: snap.l2.clone(),
            l3: snap.l3.clone(),
            dram: snap.dram.clone(),
            mrb: Mrb::new(cfg.mrb_entries),
            core_pf,
            mpp,
            cfg: cfg.clone(),
            bundle,
            page_table: snap.page_table.clone(),
            promote_budget: demand_promotion_budget(cfg),
            stats: snap.stats,
            pf_buf: Vec::with_capacity(64),
            mpp_buf: Vec::with_capacity(64),
            mshr: snap.mshr.clone(),
            same_page,
            pf_page_memo: FxHashMap::default(),
            adaptive,
            obs: cfg.obs.map(|c| Box::new(ObsRecorder::new(c))),
            warmup_boundary: snap.warmup_boundary,
            pf_enabled: snap.pf_enabled,
            hot_mutation: HotLaneMutation::None,
        }
    }

    /// Arms an injected hot-lane fault, for the conformance self-test that
    /// proves the lockstep differ catches a fast-lane divergence.
    #[doc(hidden)]
    pub fn set_hot_lane_mutation(&mut self, mutation: HotLaneMutation) {
        self.hot_mutation = mutation;
    }

    /// A cheap observable fingerprint of demand-path state, for the
    /// lockstep fork-vs-scratch differ: any restore omission that can
    /// change timing shows up here within a few operations.
    pub fn probe(&self) -> SystemProbe {
        SystemProbe {
            dtlb_misses: self.stats.dtlb_misses,
            l1_demand_hits: self.l1.stats().demand_hits.total(),
            dram_demand_accesses: self.dram.stats().demand_accesses,
        }
    }

    /// Orchestration statistics.
    pub fn stats(&self) -> &SystemStats {
        &self.stats
    }

    /// The L1 cache (for inspection in tests).
    pub fn l1(&self) -> &SetAssocCache {
        &self.l1
    }

    /// The L2 cache, if configured.
    pub fn l2(&self) -> Option<&SetAssocCache> {
        self.l2.as_ref()
    }

    /// The shared L3.
    pub fn l3(&self) -> &SetAssocCache {
        &self.l3
    }

    /// The DRAM model.
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    /// The MPP, when the configuration has one.
    pub fn mpp(&self) -> Option<&Mpp> {
        self.mpp.as_ref()
    }

    fn dtype_of_line(&self, vline: u64) -> Option<DataType> {
        self.bundle
            .space
            .data_type(VirtAddr::new(vline * droplet_trace::LINE_BYTES))
    }

    /// Fills `pline` into the L3, maintaining inclusion (back-invalidating
    /// L1/L2 copies of the victim) and writing back dirty victims.
    fn fill_l3(&mut self, pline: u64, info: FillInfo, now: Cycle) {
        if let Some(victim) = self.l3.fill(pline, info) {
            // A tracked prefetched line leaving the chip without a demand
            // use is a wasted (inaccurate) prefetch. The tag rides on the
            // evicted line itself (no side table to consult).
            if let Some(dt) = victim.tracked {
                self.stats.prefetch_wasted.bump(dt);
            }
            let mut dirty = victim.dirty;
            if let Some(l2) = self.l2.as_mut() {
                if let Some(v2) = l2.invalidate(victim.line) {
                    dirty |= v2.dirty;
                }
            }
            if let Some(v1) = self.l1.invalidate(victim.line) {
                dirty |= v1.dirty;
            }
            if dirty {
                self.stats.writebacks += 1;
                self.dram.request(victim.line, now, false);
            }
        }
    }

    /// Processes core-side prefetch requests produced on the demand path.
    fn process_prefetch_requests(&mut self, now: Cycle) {
        if self.pf_buf.is_empty() {
            return;
        }
        let reqs = std::mem::take(&mut self.pf_buf);
        let mono = self.cfg.prefetcher.monolithic_l1();
        // Requests in one batch cluster on a page (a degree-k engine emits k
        // lines from one trigger), so a one-entry memo in front of the page
        // map catches most of them.
        let mut last: Option<(u64, PagePfMemo)> = None;
        for req in &reqs {
            let vaddr = VirtAddr::new(req.vline * droplet_trace::LINE_BYTES);
            let vpn = req.vline / LINES_PER_PAGE;
            let translated = match last {
                Some((memo_vpn, memo)) if memo_vpn == vpn => memo,
                _ => {
                    let looked_up = match self.pf_page_memo.get(&vpn) {
                        Some(&memo) => memo,
                        None => {
                            let page_base = VirtAddr::new(vpn * PAGE_BYTES);
                            let fresh = self.bundle.space.region_of(page_base).and_then(|region| {
                                self.page_table
                                    .lookup(page_base)
                                    .map(|entry| (region.dtype(), entry, region.end().raw()))
                            });
                            self.pf_page_memo.insert(vpn, fresh);
                            fresh
                        }
                    };
                    last = Some((vpn, looked_up));
                    looked_up
                }
            };
            let Some((dtype, entry, mapped_until)) = translated else {
                self.stats.prefetch_unmapped_drops += 1;
                continue;
            };
            if vaddr.raw() >= mapped_until {
                // Tail of the region's last page: allocated page, unmapped bytes.
                self.stats.prefetch_unmapped_drops += 1;
                continue;
            }
            let pline =
                (entry.frame * PAGE_BYTES + vaddr.page_offset()) / droplet_trace::LINE_BYTES;

            // Redundant if already resident at the fill destination.
            let resident = if mono {
                self.l1.contains(pline)
            } else {
                self.l2.as_ref().is_some_and(|l2| l2.contains(pline))
            };
            if resident {
                self.stats.prefetch_redundant += 1;
                continue;
            }

            // Data-aware requests enter the L3 request queue directly;
            // conventional requests looked up the L2 first (the residency
            // check above) and then proceed to the L3.
            if self.l3.contains(pline) {
                self.l3.mark_tracked(pline, dtype);
                let ready = now + self.cfg.l3.tag_latency + self.cfg.l3.data_latency;
                if let Some(l2) = self.l2.as_mut() {
                    l2.fill(pline, FillInfo::prefetch(dtype, ready));
                }
                if mono {
                    // The L1 copy carries the accuracy bit that gates the
                    // demand hit path's L3 tag probe.
                    self.l1
                        .fill(pline, FillInfo::prefetch(dtype, ready).tracked());
                }
                continue;
            }

            let resp = self
                .dram
                .request(pline, now + self.cfg.l3.tag_latency, true);
            // Track in the MRB; the C-bit marks data-aware streamer
            // requests, i.e. structure prefetches (Section V-C1).
            self.mrb.insert(MrbEntry {
                pline,
                vline: req.vline,
                c_bit: req.into_l3_queue,
                core: 0,
                complete_at: resp.complete_at,
            });
            // The accuracy tag is installed with the L3 fill (the tag lives
            // at the inclusive level only).
            self.fill_l3(
                pline,
                FillInfo::prefetch(dtype, resp.complete_at).tracked(),
                now,
            );
            if let Some(l2) = self.l2.as_mut() {
                l2.fill(pline, FillInfo::prefetch(dtype, resp.complete_at));
            }
            if mono {
                self.l1
                    .fill(pline, FillInfo::prefetch(dtype, resp.complete_at).tracked());
            }
        }
        self.pf_buf = reqs;
        self.pf_buf.clear();
    }

    /// Drains completed DRAM fills from the MRB and lets the MPP react to
    /// structure prefetch arrivals (Fig. 8 ❷ → ❸).
    fn drain_mrb(&mut self, now: Cycle) {
        if self.mpp.is_none() {
            // No MPP to notify: completions only free buffer capacity.
            self.mrb.discard_completed(now);
            return;
        }
        let done = self.mrb.drain_completed(now);
        if done.is_empty() && self.mpp_buf.is_empty() {
            return;
        }
        for entry in done {
            let is_structure_prefetch = if self.cfg.prefetcher.mpp_recognizes_structure() {
                // MPP1: recognize by address range.
                self.dtype_of_line(entry.vline) == Some(DataType::Structure)
            } else {
                entry.c_bit
            };
            if !is_structure_prefetch {
                continue;
            }
            // DROPLET reacts the moment the line reaches the MC; the
            // monolithic L1 variant must wait for the refill path to carry
            // the line up to the L1 before the PAG can scan it.
            let trigger_at = if self.cfg.prefetcher.monolithic_l1() {
                let l2_lat = self.cfg.l2.as_ref().map_or(0, |c| c.data_latency);
                entry.complete_at + self.cfg.l3.data_latency + l2_lat + self.cfg.l1.data_latency
            } else {
                entry.complete_at
            };
            let mpp = self.mpp.as_mut().expect("guarded above");
            mpp.on_structure_fill(
                entry.vline,
                entry.core,
                &self.bundle.funcmem,
                &self.page_table,
                trigger_at,
                &mut self.mpp_buf,
            );
        }
        self.process_mpp_candidates();
    }

    /// Routes MPP property prefetch candidates: coherence check, then
    /// LLC→L2 copy or DRAM fetch (Fig. 8 green path).
    fn process_mpp_candidates(&mut self) {
        let cands = std::mem::take(&mut self.mpp_buf);
        let mono = self.cfg.prefetcher.monolithic_l1();
        for cand in &cands {
            if let Some(mpp) = self.mpp.as_mut() {
                mpp.on_candidate_complete();
            }
            let pl = cand.pline;
            let in_dest = if mono {
                self.l1.contains(pl)
            } else {
                self.l2.as_ref().is_some_and(|l2| l2.contains(pl)) || self.l1.contains(pl)
            };
            if in_dest {
                self.stats.mpp_redundant += 1;
                continue;
            }
            if self.l3.contains(pl) {
                // On-chip: copy from the inclusive LLC into the private L2.
                self.l3.mark_tracked(pl, DataType::Property);
                let ready = cand.ready_at + self.cfg.l3.data_latency;
                if let Some(l2) = self.l2.as_mut() {
                    l2.fill(pl, FillInfo::prefetch(DataType::Property, ready));
                }
                if mono {
                    self.l1
                        .fill(pl, FillInfo::prefetch(DataType::Property, ready).tracked());
                }
                self.stats.mpp_copied_from_llc += 1;
            } else {
                let resp = self.dram.request(pl, cand.ready_at, true);
                self.fill_l3(
                    pl,
                    FillInfo::prefetch(DataType::Property, resp.complete_at).tracked(),
                    cand.ready_at,
                );
                if let Some(l2) = self.l2.as_mut() {
                    l2.fill(pl, FillInfo::prefetch(DataType::Property, resp.complete_at));
                }
                if mono {
                    self.l1.fill(
                        pl,
                        FillInfo::prefetch(DataType::Property, resp.complete_at).tracked(),
                    );
                }
            }
        }
        self.mpp_buf = cands;
        self.mpp_buf.clear();
    }

    /// Adaptive DROPLET: account one demand miss and run the epoch logic.
    /// Inert during warm-up (probing epochs count measured misses only).
    fn adaptive_observe_miss(&mut self, latency: Cycle) {
        if !self.pf_enabled {
            return;
        }
        let Some(mut st) = self.adaptive else {
            return;
        };
        if st.phase == 2 {
            return;
        }
        st.misses += 1;
        st.latency_sum += latency;
        if st.misses >= st.epoch_misses {
            let avg = st.latency_sum as f64 / st.misses as f64;
            if st.phase == 0 {
                st.probe_data_aware_avg = avg;
                st.phase = 1;
                if let Some(pf) = self.core_pf.as_mut() {
                    pf.set_data_aware(false);
                }
            } else {
                let keep_data_aware = st.probe_data_aware_avg <= avg;
                if let Some(pf) = self.core_pf.as_mut() {
                    pf.set_data_aware(keep_data_aware);
                }
                st.phase = 2;
                self.stats.adaptive_locked_data_aware = Some(keep_data_aware);
            }
            st.misses = 0;
            st.latency_sum = 0;
        }
        self.adaptive = Some(st);
    }

    fn feed_prefetcher(&mut self, ev: AccessEvent) {
        // Demand-only warm-up: engines observe nothing before the boundary,
        // so the warmed state (and hence a fork snapshot) is independent of
        // the prefetcher configuration.
        if !self.pf_enabled {
            return;
        }
        if let Some(pf) = self.core_pf.as_mut() {
            pf.on_access(&ev, &mut self.pf_buf);
        }
    }
}

/// An owned (`'static`) capture of everything in a [`System`] that evolved
/// during warm-up: page table, DTLB, all cache tags+stamps+meta, DRAM and
/// MSHR state, predictor state, and statistics. Taken with
/// [`System::snapshot`] at the warm-up boundary; any configuration sharing
/// the parent's [`SystemConfig::warmup_key`] can [`System::fork`] from it.
///
/// Deliberately *not* captured: the MRB (only prefetch paths fill it, so
/// it is provably empty at the boundary and is rebuilt at the fork's
/// capacity), the sampler (measurement-only; `warmup_done` re-anchors it),
/// and the transient prefetch/candidate buffers (always empty between
/// accesses).
#[derive(Clone)]
pub struct SystemSnapshot {
    cfg: SystemConfig,
    page_table: PageTable,
    dtlb: Tlb,
    l1: SetAssocCache,
    l2: Option<SetAssocCache>,
    l3: SetAssocCache,
    dram: Dram,
    mshr: MshrFile,
    same_page: Option<(u64, PageEntry)>,
    stats: SystemStats,
    core_pf: Option<Box<dyn Prefetcher>>,
    mpp: Option<Mpp>,
    adaptive: Option<AdaptiveState>,
    warmup_boundary: Cycle,
    pf_enabled: bool,
}

impl SystemSnapshot {
    /// The configuration of the system this snapshot was taken from.
    pub fn parent_cfg(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The parent's simulated-machine hash (for `forked_from` manifests).
    pub fn parent_config_hash(&self) -> u64 {
        config_hash(&self.cfg)
    }
}

/// An injected snapshot-restore fault: skip one field when forking, so the
/// conformance self-test can prove the lockstep fork-vs-scratch differ
/// detects incomplete snapshots. Mirrors `CacheMutation`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ForkMutation {
    /// Faithful restore (production behavior).
    #[default]
    None,
    /// Forget the warmed DTLB (fork starts translation-cold).
    SkipDtlb,
    /// Forget the warmed L1 (fork starts with a cold L1).
    SkipL1,
}

/// An injected hot-lane fault: weaken one of the fast lane's eligibility
/// checks so the conformance self-test can prove the hot-vs-slow lockstep
/// differ catches a fast-lane divergence. Mirrors [`ForkMutation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HotLaneMutation {
    /// Faithful hot lane (production behavior).
    #[default]
    None,
    /// Trust the same-page translation memo without checking the page
    /// number — the classic fast-lane bug: an access to a new page is
    /// serviced from the previous page's frame.
    StaleMemo,
}

/// Observable demand-path counters exposed by [`System::probe`] for the
/// lockstep differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemProbe {
    /// Demand DTLB misses so far.
    pub dtlb_misses: u64,
    /// L1 demand hits so far (all data types).
    pub l1_demand_hits: u64,
    /// DRAM demand accesses so far.
    pub dram_demand_accesses: u64,
}

/// The core-side prefetch engine `cfg` asks for (pristine).
fn build_core_pf(cfg: &SystemConfig) -> Option<Box<dyn Prefetcher>> {
    match cfg.prefetcher {
        PrefetcherKind::None => None,
        PrefetcherKind::NextLine => Some(Box::new(droplet_prefetch::NextLinePrefetcher::new(2))),
        PrefetcherKind::Ghb => Some(Box::new(GhbPrefetcher::new(cfg.ghb.clone()))),
        PrefetcherKind::Vldp => Some(Box::new(VldpPrefetcher::new(cfg.vldp.clone()))),
        PrefetcherKind::Stream
        | PrefetcherKind::StreamMpp1
        | PrefetcherKind::Droplet
        | PrefetcherKind::MonoDropletL1
        | PrefetcherKind::AdaptiveDroplet => {
            Some(Box::new(StreamPrefetcher::new(cfg.stream.clone())))
        }
    }
}

/// The MPP `cfg` asks for, programmed with `bundle`'s property targets.
fn build_mpp(cfg: &SystemConfig, bundle: &TraceBundle) -> Option<Mpp> {
    cfg.prefetcher.has_mpp().then(|| {
        let mut targets = vec![droplet_prefetch::PropertyTarget {
            base: bundle.property_base,
            elem_bytes: bundle.prop_elem_bytes,
            len: bundle.prop_len,
        }];
        for &(base, elem_bytes, len) in &bundle.extra_property_targets {
            targets.push(droplet_prefetch::PropertyTarget {
                base,
                elem_bytes,
                len,
            });
        }
        Mpp::new_multi(cfg.mpp.clone(), targets)
    })
}

/// The adaptive-DROPLET probing state `cfg` asks for (fresh).
fn build_adaptive(cfg: &SystemConfig) -> Option<AdaptiveState> {
    (cfg.prefetcher == PrefetcherKind::AdaptiveDroplet).then(|| AdaptiveState {
        epoch_misses: cfg.adaptive_epoch_misses.max(1),
        misses: 0,
        latency_sum: 0,
        phase: 0,
        probe_data_aware_avg: 0.0,
    })
}

/// Whether two configurations wire up identical prefetch machinery, so a
/// fork may reuse the snapshot's predictor state instead of building fresh
/// engines. (Under demand-only warm-up both paths are bit-identical — the
/// snapshot's engines are pristine — but reuse keeps the fork path honest
/// should warm-up ever start feeding them.)
fn prefetch_wiring_eq(a: &SystemConfig, b: &SystemConfig) -> bool {
    a.prefetcher == b.prefetcher
        && a.stream == b.stream
        && a.ghb == b.ghb
        && a.vldp == b.vldp
        && a.mpp == b.mpp
        && a.adaptive_epoch_misses == b.adaptive_epoch_misses
}

/// The worst-case latency a *demand* access would pay if it re-issued
/// to DRAM right now with demand priority. A demand hit on a line whose
/// in-flight (deprioritized) prefetch completes later than this is
/// promoted: real MSHRs upgrade the pending request to demand priority.
/// A pure function of the configuration, computed once at system build.
fn demand_promotion_budget(cfg: &SystemConfig) -> Cycle {
    let l2 = cfg.l2.as_ref().map_or(0, |c| c.tag_latency);
    cfg.l1.tag_latency
        + l2
        + cfg.l3.tag_latency
        + cfg.l3.data_latency
        + cfg.dram.device_latency
        + cfg.dram.bus_occupancy
        + cfg.dram.bank_occupancy
}

impl MemorySystem for System<'_> {
    fn access(&mut self, op: &MemOp, id: OpId, now: Cycle) -> AccessResponse {
        let response = self.access_inner(op, id, now);
        // Zero-overhead gate: with observability off this is one always-
        // not-taken branch; on, the sampler only *reads* statistics, so
        // simulated timing is identical either way.
        if self.obs.is_some() {
            self.obs_op(op, now);
        }
        response
    }

    /// The batched hot lane: a demand access is hot-eligible when no
    /// monolithic-L1 variant is wired (its L1 hits feed the prefetcher),
    /// no MRB completions or MPP candidates are pending (so skipping
    /// [`System::drain_mrb`] is a no-op), and the one-entry translation
    /// memo already holds the op's page (so translation is walk-free and
    /// the access starts exactly at `now`). Eligibility is decided before
    /// any state is touched; once the L1 is probed the access is committed
    /// — a miss continues down the shared slow-path tail rather than
    /// declining, because the probe already counted the access. The full
    /// lane contract is DESIGN.md §17.
    #[inline]
    fn access_hot(&mut self, op: &MemOp, _id: OpId, now: Cycle) -> Option<AccessResponse> {
        if self.cfg.prefetcher.monolithic_l1() || !self.mrb.is_empty() || !self.mpp_buf.is_empty() {
            return None;
        }
        let vaddr = op.addr();
        let (memo_vpn, entry) = self.same_page?;
        if memo_vpn != vaddr.page_number() {
            match self.hot_mutation {
                // The injected fast-lane fault: trust the memo without
                // checking the page, servicing the access from the wrong
                // frame — what the lockstep differ must catch.
                HotLaneMutation::StaleMemo => {}
                HotLaneMutation::None => return None,
            }
        }
        let is_store = !op.is_load();
        let dtype = op.dtype();
        let pl = (entry.frame * PAGE_BYTES + vaddr.page_offset()) / droplet_trace::LINE_BYTES;
        let response = match self.l1.touch(pl, now, dtype, is_store) {
            Some(hit) => {
                let complete = (hit.ready_at.max(now) + self.cfg.l1.data_latency)
                    .min(now + self.promote_budget);
                AccessResponse {
                    complete_at: complete,
                    level: ServiceLevel::L1,
                }
            }
            None => self.miss_tail(vaddr, pl, entry.structure, now, now, dtype, is_store),
        };
        if self.obs.is_some() {
            self.obs_op(op, now);
        }
        Some(response)
    }

    fn warmup_done(&mut self, now: Cycle) {
        self.l1.reset_stats();
        if let Some(l2) = self.l2.as_mut() {
            l2.reset_stats();
        }
        self.l3.reset_stats();
        self.dram.reset_stats();
        if let Some(mpp) = self.mpp.as_mut() {
            mpp.reset_stats();
        }
        let locked = self.stats.adaptive_locked_data_aware;
        self.stats = SystemStats::default();
        self.stats.adaptive_locked_data_aware = locked;
        // In-flight prefetch tracking persists across the warm-up boundary:
        // lines prefetched late in warm-up and used in the window count.

        // `now` is the retire clock at the boundary — the same clock
        // `CoreResult::cycles` is measured on — recorded so utilization
        // windows line up with the core's measurement window.
        self.warmup_boundary = now;
        // Warm-up is demand-only; the prefetch machinery goes live here.
        self.pf_enabled = true;
        if self.obs.is_some() {
            // Anchor the sampler at the just-reset statistics; the MRB's
            // lifetime counters are the only non-zero baseline values.
            let baseline = self.obs_snapshot(now);
            if let Some(obs) = self.obs.as_mut() {
                obs.reset(baseline);
            }
        }
    }
}

impl System<'_> {
    /// The demand-path body of [`MemorySystem::access`]; split out so the
    /// sampling hook in the trait method stays off the fast path.
    fn access_inner(&mut self, op: &MemOp, _id: OpId, now: Cycle) -> AccessResponse {
        self.drain_mrb(now);

        let vaddr = op.addr();
        let is_store = !op.is_load();
        let dtype = op.dtype();

        // Address translation through the DTLB, lazily: the page table is
        // walked only on a DTLB miss, and a repeat access to the previous
        // page is resolved from the one-entry memo without even scanning
        // the DTLB (the page is guaranteed its MRU entry, so the skipped
        // recency refresh cannot change any future eviction).
        let vpn = vaddr.page_number();
        let mut t0 = now;
        let entry = match self.same_page {
            Some((memo_vpn, memo_entry)) if memo_vpn == vpn => memo_entry,
            _ => {
                let page_table = &mut self.page_table;
                let space = &self.bundle.space;
                let (entry, hit) = self
                    .dtlb
                    .access_entry(vpn, || page_table.translate(vaddr, space).1);
                if !hit {
                    self.stats.dtlb_misses += 1;
                    t0 += self.cfg.tlb_walk_latency;
                }
                self.same_page = Some((vpn, entry));
                entry
            }
        };
        let pl = (entry.frame * PAGE_BYTES + vaddr.page_offset()) / droplet_trace::LINE_BYTES;
        let is_structure = entry.structure;
        let mono = self.cfg.prefetcher.monolithic_l1();

        let promote = self.promote_budget;

        // --- L1 ---
        if let Some(hit) = self.l1.touch(pl, t0, dtype, is_store) {
            let complete = (hit.ready_at.max(t0) + self.cfg.l1.data_latency).min(t0 + promote);
            if mono {
                // Only the monolithic-L1 variants fill prefetches into the
                // L1, so only their hits can be the first demand touch of a
                // tracked line. The L1 copy carries its own accuracy bit
                // (set by the same fills that tag the L3), so the common
                // case stays inside the set the touch above just warmed and
                // the cold L3 tag probe runs only when the bit is present.
                if self.l1.take_tracked(pl).is_some() {
                    if let Some(dt) = self.l3.take_tracked(pl) {
                        self.stats.prefetch_useful.bump(dt);
                    }
                }
                if is_structure {
                    // The monolithic L1 streamer also sees its hits as
                    // feedback.
                    self.feed_prefetcher(AccessEvent {
                        vaddr,
                        kind: EventKind::L2Hit,
                        is_structure,
                        dtype,
                    });
                    self.process_prefetch_requests(now);
                }
            }
            return AccessResponse {
                complete_at: complete,
                level: ServiceLevel::L1,
            };
        }

        self.miss_tail(vaddr, pl, is_structure, t0, now, dtype, is_store)
    }

    /// The shared L1-miss tail of the demand path: prefetch-accuracy
    /// settling, L2-queue snoop, MSHR stall, the L2/L3/DRAM descent,
    /// demand fills, and prefetch issue. Factored out of
    /// [`System::access_inner`] so the hot lane's miss case replays the
    /// slow path exactly (`t0` is the post-translation start time; equal
    /// to `now` when the access came through the hot lane's memo hit).
    /// Out of line so the hot lane's L1-hit fast path stays small. The
    /// seven arguments are the demand-path registers at the split point —
    /// bundling them would cost a struct build on the hot lane.
    #[inline(never)]
    #[allow(clippy::too_many_arguments)]
    fn miss_tail(
        &mut self,
        vaddr: VirtAddr,
        pl: u64,
        is_structure: bool,
        mut t0: Cycle,
        now: Cycle,
        dtype: DataType,
        is_store: bool,
    ) -> AccessResponse {
        let promote = self.promote_budget;
        let mono = self.cfg.prefetcher.monolithic_l1();

        // Settle prefetch-accuracy tracking: the first demand touch of a
        // tracked line means the prefetch was useful. For everyone but the
        // monolithic-L1 variants prefetch fills stop at the L2, so that
        // first touch always lands here on the L1-miss path (hits skip the
        // probe entirely); the monolithic case still needs it for lines
        // whose L1 copy was evicted while the L3 tag stayed alive.
        if let Some(dt) = self.l3.take_tracked(pl) {
            self.stats.prefetch_useful.bump(dt);
        }

        // L1 miss: the miss address (with its TLB structure bit) enters the
        // L2 request queue, which the core-side prefetcher snoops.
        self.feed_prefetcher(AccessEvent {
            vaddr,
            kind: EventKind::L1Miss,
            is_structure,
            dtype,
        });

        // Allocate an MSHR: at most `mshrs` demand misses may be in
        // flight; a full file stalls the new miss until a slot frees.
        let free_at = self.mshr.earliest_free();
        if free_at > t0 {
            t0 = free_at;
        }

        let t1 = t0 + self.cfg.l1.tag_latency;
        let (response, fill_ready) = 'path: {
            // --- L2 ---
            if self.l2.is_some() {
                let l2cfg_data = self.cfg.l2.as_ref().expect("l2 exists").data_latency;
                let l2cfg_tag = self.cfg.l2.as_ref().expect("l2 exists").tag_latency;
                if let Some(hit) = self
                    .l2
                    .as_mut()
                    .expect("l2 exists")
                    .touch(pl, t1, dtype, is_store)
                {
                    let complete = (hit.ready_at.max(t1) + l2cfg_data).min(t1 + promote);
                    // DROPLET's data-aware streamer trains on L2 structure
                    // hits (Fig. 9(b)).
                    let live_data_aware =
                        self.core_pf.as_ref().is_some_and(|pf| pf.is_data_aware());
                    if is_structure && live_data_aware && !mono {
                        self.feed_prefetcher(AccessEvent {
                            vaddr,
                            kind: EventKind::L2Hit,
                            is_structure,
                            dtype,
                        });
                    }
                    self.l1.fill(pl, {
                        let f = FillInfo::demand(dtype, complete);
                        if is_store {
                            f.dirty()
                        } else {
                            f
                        }
                    });
                    break 'path (
                        AccessResponse {
                            complete_at: complete,
                            level: ServiceLevel::L2,
                        },
                        None,
                    );
                }
                let t2 = t1 + l2cfg_tag;
                // --- L3 ---
                if let Some(hit) = self.l3.touch(pl, t2, dtype, is_store) {
                    let complete =
                        (hit.ready_at.max(t2) + self.cfg.l3.data_latency).min(t2 + promote);
                    break 'path (
                        AccessResponse {
                            complete_at: complete,
                            level: ServiceLevel::L3,
                        },
                        Some(complete),
                    );
                }
                let t3 = t2 + self.cfg.l3.tag_latency;
                let resp = self.dram.request(pl, t3, false);
                break 'path (
                    AccessResponse {
                        complete_at: resp.complete_at,
                        level: ServiceLevel::Dram,
                    },
                    Some(resp.complete_at),
                );
            }
            // No private L2 (Fig. 4b leftmost bar).
            if let Some(hit) = self.l3.touch(pl, t1, dtype, is_store) {
                let complete = (hit.ready_at.max(t1) + self.cfg.l3.data_latency).min(t1 + promote);
                break 'path (
                    AccessResponse {
                        complete_at: complete,
                        level: ServiceLevel::L3,
                    },
                    Some(complete),
                );
            }
            let t3 = t1 + self.cfg.l3.tag_latency;
            let resp = self.dram.request(pl, t3, false);
            (
                AccessResponse {
                    complete_at: resp.complete_at,
                    level: ServiceLevel::Dram,
                },
                Some(resp.complete_at),
            )
        };

        self.mshr.allocate(response.complete_at);
        self.adaptive_observe_miss(response.complete_at.saturating_sub(now));

        // Demand fills on the refill path (inclusive hierarchy).
        if let Some(ready) = fill_ready {
            if response.level == ServiceLevel::Dram {
                self.fill_l3(pl, FillInfo::demand(dtype, ready), now);
            }
            if let Some(l2) = self.l2.as_mut() {
                l2.fill(pl, FillInfo::demand(dtype, ready));
            }
            let f = FillInfo::demand(dtype, ready);
            self.l1.fill(pl, if is_store { f.dirty() } else { f });
        }

        self.process_prefetch_requests(now);
        response
    }

    /// Counts one retired demand op for the sampler and snapshots the
    /// system at epoch boundaries. Out-of-line so the `access` fast path
    /// pays only the `is_some` branch when sampling is off.
    #[inline(never)]
    fn obs_op(&mut self, op: &MemOp, now: Cycle) {
        let Some(mut obs) = self.obs.take() else {
            return;
        };
        if obs.on_op(1 + u64::from(op.pre_compute())) {
            obs.record(self.obs_snapshot(now));
        }
        self.obs = Some(obs);
    }

    /// A read-only snapshot of every statistics block. Nothing simulated is
    /// touched here — which is why digests match with sampling on and off.
    fn obs_snapshot(&self, cycle: Cycle) -> ObsSnapshot {
        let (mrb_inserted, mrb_overflowed) = self.mrb.stats();
        ObsSnapshot {
            ops: 0,
            instructions: 0,
            cycle,
            l1: *self.l1.stats(),
            l2: self.l2.as_ref().map(|c| *c.stats()),
            l3: *self.l3.stats(),
            dram: *self.dram.stats(),
            mrb_len: self.mrb.len() as u64,
            mrb_inserted,
            mrb_overflowed,
            mpp: self.mpp.as_ref().map(|m| *m.stats()),
            prefetch_useful: self.stats.prefetch_useful,
            prefetch_wasted: self.stats.prefetch_wasted,
            writebacks: self.stats.writebacks,
        }
    }

    /// Retire-clock cycle at which the measurement window opened.
    pub fn warmup_boundary(&self) -> Cycle {
        self.warmup_boundary
    }

    /// Closes the sampler at the end-of-run retire cycle and takes the run
    /// journal; `None` when observability is off.
    pub fn take_journal(&mut self, end_cycle: Cycle) -> Option<RunJournal> {
        let mut obs = self.obs.take()?;
        obs.flush_final(self.obs_snapshot(end_cycle));
        Some(obs.into_journal())
    }

    /// Subscribes `stream` to the epoch sampler: measurement-window epochs
    /// are pushed as JSONL lines while the run simulates (the
    /// `droplet-serve` streaming path). A no-op when observability is off —
    /// callers wanting live epochs must set [`SystemConfig::obs`] first.
    /// Subscribing never changes simulated behavior or digests.
    pub fn attach_obs_stream(&mut self, stream: std::sync::Arc<droplet_obs::EpochStream>) {
        if let Some(obs) = self.obs.as_mut() {
            obs.set_stream(stream);
        }
    }
}

/// Everything measured in one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Core-side timing results.
    pub core: CoreResult,
    /// Per-level cache statistics (measurement window).
    pub l1: CacheStats,
    /// L2 statistics, when an L2 is configured.
    pub l2: Option<CacheStats>,
    /// Shared-LLC statistics.
    pub l3: CacheStats,
    /// DRAM statistics.
    pub dram: DramStats,
    /// MPP statistics, when the configuration has an MPP.
    pub mpp: Option<MppStats>,
    /// Orchestration statistics.
    pub sys: SystemStats,
    /// Whether prefetches land in the L1 (monolithic variant).
    pub prefetch_home_is_l1: bool,
    /// Retire-clock cycle at which the measurement window opened (so the
    /// window is `[warmup_boundary_cycle, warmup_boundary_cycle +
    /// core.cycles)`).
    pub warmup_boundary_cycle: Cycle,
    /// Warm-up ops the caller requested.
    pub warmup_ops_requested: u64,
    /// Warm-up ops actually applied after the half-trace clamp. When this
    /// differs from the request the run is *half-warm* — check
    /// [`RunResult::warmup_clamped`] before quoting its numbers.
    pub warmup_ops_applied: u64,
    /// Whether the half-trace clamp shortened the requested warm-up.
    pub warmup_clamped: bool,
    /// Reproducibility manifest (config hash, warm-up clamp, wall time…).
    pub manifest: RunManifest,
    /// Epoch journal, present when the configuration enabled sampling.
    pub journal: Option<RunJournal>,
}

impl RunResult {
    /// LLC demand misses per kilo instruction.
    pub fn llc_mpki(&self) -> f64 {
        self.l3.mpki(self.core.instructions)
    }

    /// LLC demand MPKI for one data type (Fig. 13).
    pub fn llc_mpki_of(&self, dtype: DataType) -> f64 {
        if self.core.instructions == 0 {
            0.0
        } else {
            self.l3.demand_misses().get(dtype) as f64 * 1000.0 / self.core.instructions as f64
        }
    }

    /// L2 demand hit rate (Fig. 4b / Fig. 12); 0 when no L2 is configured.
    pub fn l2_hit_rate(&self) -> f64 {
        self.l2.as_ref().map_or(0.0, CacheStats::hit_rate)
    }

    /// Bus accesses per kilo instruction (Fig. 15).
    pub fn bpki(&self) -> f64 {
        self.dram.bpki(self.core.instructions)
    }

    /// DRAM bandwidth utilization over the measurement window (Fig. 3a).
    ///
    /// Windowed on the retire clock from the warm-up boundary to the end
    /// of the run, then clipped by [`DramStats::window_utilization`] to
    /// when DRAM was actually active: a post-warm-up hit run before the
    /// first burst (`first_request_at`) is cache behavior, not idle DRAM
    /// bandwidth, and bursts draining past the last retire still count.
    pub fn bandwidth_utilization(&self) -> f64 {
        self.dram.window_utilization(
            self.warmup_boundary_cycle,
            self.warmup_boundary_cycle + self.core.cycles,
        )
    }

    /// Fraction of `dtype` demand references serviced by DRAM (Fig. 4c).
    pub fn offchip_fraction(&self, dtype: DataType) -> f64 {
        let refs = self.l1.demand_accesses.get(dtype);
        if refs == 0 {
            0.0
        } else {
            self.l3.demand_misses().get(dtype) as f64 / refs as f64
        }
    }

    /// Where demand accesses of `dtype` were serviced: fractions for
    /// [L1, L2, L3, DRAM] (Fig. 7).
    pub fn service_breakdown(&self, dtype: DataType) -> [f64; 4] {
        let total = self.l1.demand_accesses.get(dtype);
        if total == 0 {
            return [0.0; 4];
        }
        let l1h = self.l1.demand_hits.get(dtype);
        let l2h = self.l2.as_ref().map_or(0, |s| s.demand_hits.get(dtype));
        let l3h = self.l3.demand_hits.get(dtype);
        let dram = self.l3.demand_misses().get(dtype);
        let t = total as f64;
        [
            l1h as f64 / t,
            l2h as f64 / t,
            l3h as f64 / t,
            dram as f64 / t,
        ]
    }

    /// Prefetch accuracy for `dtype` (Fig. 14): the fraction of prefetched
    /// lines demanded while on chip, over those plus the lines evicted
    /// off-chip unused.
    pub fn prefetch_accuracy(&self, dtype: DataType) -> f64 {
        self.sys.prefetch_accuracy(dtype)
    }

    /// FNV-1a digest over every deterministic field of the result — all
    /// simulated statistics plus the warm-up boundary, excluding manifest
    /// lineage, wall time, and the journal (which add sampling-cadence and
    /// timing noise). Two runs of the same (trace, config, warm-up) always
    /// digest equal regardless of threading, forking, chunking, or
    /// observability; the fork-determinism and serve dedupe suites pin
    /// this.
    pub fn digest(&self) -> u64 {
        let repr = format!(
            "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{}|{}",
            self.core,
            self.l1,
            self.l2,
            self.l3,
            self.dram,
            self.mpp,
            self.sys,
            self.warmup_boundary_cycle,
            self.warmup_ops_applied,
        );
        fnv1a(repr.as_bytes())
    }
}

/// FNV-1a hash over the *simulated* machine: the configuration with the
/// observability option cleared, so sampled and unsampled runs of the same
/// machine share a hash. This is the hash every [`RunManifest`] records and
/// the identity `droplet-serve` keys its in-flight dedupe and on-disk
/// result store on.
pub fn config_hash(cfg: &SystemConfig) -> u64 {
    let mut machine = cfg.clone();
    machine.obs = None;
    fnv1a(format!("{machine:?}").as_bytes())
}

/// Replays `bundle` against a system configured by `cfg`, with the first
/// `warmup_ops` operations excluded from statistics.
///
/// A warm-up longer than the trace is clamped so the measurement window
/// still covers at least half of it; the clamp is surfaced in
/// [`RunResult::warmup_clamped`] and the manifest rather than applied
/// silently.
///
/// # Example
///
/// See the crate-level example.
pub fn run_workload(bundle: &TraceBundle, cfg: &SystemConfig, warmup_ops: usize) -> RunResult {
    run_workload_from(&mut SliceSource::new(&bundle.ops), bundle, cfg, warmup_ops)
}

/// [`run_workload`] forced down the scalar (per-op) replay lane — no span
/// plan, no hot lane. Results are bit-identical to [`run_workload`] by the
/// hot-lane contract (DESIGN.md §17); this runner exists as the reference
/// side the `demand_path_digests` suite differences the batched lane
/// against, not for production use.
pub fn run_workload_scalar(
    bundle: &TraceBundle,
    cfg: &SystemConfig,
    warmup_ops: usize,
) -> RunResult {
    let source = &mut SliceSource::new(&bundle.ops);
    let wall = std::time::Instant::now();
    let total = source.op_count();
    let mut engine = CoreEngine::new(cfg.core);
    let mut system = System::new(cfg.clone(), bundle);
    let applied = (warmup_ops as u64).min(total / 2);
    feed_warmup_lane(
        &mut engine,
        source,
        &mut system,
        applied,
        ReplayLane::Scalar,
    );
    let core_result = feed_measure_lane(
        &mut engine,
        source,
        &mut system,
        applied,
        total,
        ReplayLane::Scalar,
    );
    assemble_result(
        system,
        core_result,
        RunShape {
            warmup_requested: warmup_ops as u64,
            warmup_applied: applied,
            trace_ops: total,
            forked_from: None,
            warmup_shared: None,
        },
        wall,
    )
}

/// [`run_workload`] over an arbitrary [`TraceSource`] — the zero-copy
/// replay path. `source` supplies the op stream (e.g. a block-decoded
/// columnar artifact, see [`droplet_trace::ColumnarSource`]); `bundle`
/// still supplies everything the system needs besides the ops themselves
/// (address space, functional memory, property layout). The source must
/// carry the same op stream as `bundle` was built with — replaying a
/// different stream against mismatched functional memory is not detected
/// here; [`droplet_trace::ColumnarSource::digest`] exists so callers can
/// check before replaying.
///
/// Results are bit-identical to [`run_workload`]: both drive the same
/// chunk-resumable engine, and the engine's state is a pure function of
/// the ops applied so far, independent of chunking.
pub fn run_workload_from(
    source: &mut dyn TraceSource,
    bundle: &TraceBundle,
    cfg: &SystemConfig,
    warmup_ops: usize,
) -> RunResult {
    run_workload_with_stream(source, bundle, cfg, warmup_ops, None)
}

/// [`run_workload_from`] with an optional live [`EpochStream`] subscribed
/// before the first op: measurement epochs are pushed to the stream as the
/// run progresses, and the stream is finished when the result is
/// assembled. Requires [`SystemConfig::obs`] to be set for any lines to
/// flow; results are bit-identical to the unstreamed runners either way.
///
/// [`EpochStream`]: droplet_obs::EpochStream
pub fn run_workload_with_stream(
    source: &mut dyn TraceSource,
    bundle: &TraceBundle,
    cfg: &SystemConfig,
    warmup_ops: usize,
    stream: Option<std::sync::Arc<droplet_obs::EpochStream>>,
) -> RunResult {
    let wall = std::time::Instant::now();
    let total = source.op_count();
    let mut engine = CoreEngine::new(cfg.core);
    let mut system = System::new(cfg.clone(), bundle);
    if let Some(stream) = stream {
        system.attach_obs_stream(stream);
    }
    let applied = (warmup_ops as u64).min(total / 2);
    feed_warmup(&mut engine, source, &mut system, applied);
    let core_result = feed_measure(&mut engine, source, &mut system, applied, total);
    assemble_result(
        system,
        core_result,
        RunShape {
            warmup_requested: warmup_ops as u64,
            warmup_applied: applied,
            trace_ops: total,
            forked_from: None,
            warmup_shared: None,
        },
        wall,
    )
}

/// Which replay lane a feeder drives: the batched span-planned lane
/// (production) or the scalar per-op lane (the conformance reference).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReplayLane {
    Batched,
    Scalar,
}

/// Streams `[0, until)` from `source` into the engine's warm-up span.
pub(crate) fn feed_warmup(
    engine: &mut CoreEngine,
    source: &mut dyn TraceSource,
    system: &mut System<'_>,
    until: u64,
) {
    feed_warmup_lane(engine, source, system, until, ReplayLane::Batched);
}

pub(crate) fn feed_warmup_lane(
    engine: &mut CoreEngine,
    source: &mut dyn TraceSource,
    system: &mut System<'_>,
    until: u64,
    lane: ReplayLane,
) {
    let mut pos = 0u64;
    while pos < until {
        let want = usize::try_from(until - pos).unwrap_or(usize::MAX);
        let run = source.next_block(pos, want);
        if run.is_empty() {
            break; // source shorter than promised; nothing left to feed
        }
        match lane {
            ReplayLane::Batched => engine.warmup(run, system),
            ReplayLane::Scalar => engine.warmup_scalar(run, system),
        }
        pos += run.len() as u64;
    }
}

/// Opens the measurement window and streams `[from, total)` through it.
pub(crate) fn feed_measure(
    engine: &mut CoreEngine,
    source: &mut dyn TraceSource,
    system: &mut System<'_>,
    from: u64,
    total: u64,
) -> CoreResult {
    feed_measure_lane(engine, source, system, from, total, ReplayLane::Batched)
}

pub(crate) fn feed_measure_lane(
    engine: &mut CoreEngine,
    source: &mut dyn TraceSource,
    system: &mut System<'_>,
    from: u64,
    total: u64,
    lane: ReplayLane,
) -> CoreResult {
    let mut m = engine.open_window(system);
    let mut pos = from;
    while pos < total {
        let run = source.next_block(pos, usize::MAX);
        if run.is_empty() {
            break;
        }
        match lane {
            ReplayLane::Batched => engine.measure_chunk(run, system, &mut m),
            ReplayLane::Scalar => engine.measure_chunk_scalar(run, system, &mut m),
        }
        pos += run.len() as u64;
    }
    engine.finish(m)
}

/// How a finished run came to be: warm-up accounting plus fork lineage.
pub(crate) struct RunShape {
    pub warmup_requested: u64,
    pub warmup_applied: u64,
    /// Ops in the replayed trace (the source's count, not the bundle's).
    pub trace_ops: u64,
    /// Parent snapshot's config hash, for forked runs.
    pub forked_from: Option<u64>,
    /// Inherited warm-up op count, for forked runs.
    pub warmup_shared: Option<u64>,
}

/// Drains the finished `system` into a [`RunResult`] with its manifest —
/// the single assembly path shared by [`run_workload`] and the forked
/// runner ([`crate::fork::run_forked`]), so fork and full runs can never
/// drift in what they report.
pub(crate) fn assemble_result(
    mut system: System<'_>,
    core_result: CoreResult,
    shape: RunShape,
    wall: std::time::Instant,
) -> RunResult {
    let cfg = &system.cfg;
    let boundary = system.warmup_boundary;
    let config_hash = config_hash(cfg);
    let prefetcher = cfg.prefetcher.name().to_string();
    let policies = format!(
        "{}/{}/{}",
        cfg.l1.policy.name(),
        cfg.l2.as_ref().map_or("-", |c| c.policy.name()),
        cfg.l3.policy.name()
    );
    let trace_ops = shape.trace_ops;
    let epoch_ops = cfg.obs.map(|o| o.epoch_ops);
    let prefetch_home_is_l1 = cfg.prefetcher.monolithic_l1();
    let journal = system.take_journal(boundary + core_result.cycles);
    let manifest = RunManifest {
        config_hash,
        prefetcher,
        policies,
        workload: None,
        trace_ops,
        warmup_requested: shape.warmup_requested,
        warmup_applied: shape.warmup_applied,
        warmup_clamped: shape.warmup_applied != shape.warmup_requested,
        warmup_boundary_cycle: boundary,
        threads: None,
        seed: std::env::var("DROPLET_TEST_SEED")
            .ok()
            .and_then(|s| s.parse().ok()),
        epoch_ops,
        epochs: journal.as_ref().map(|j| j.epoch_count() as u64),
        wall_ms: wall.elapsed().as_secs_f64() * 1000.0,
        forked_from: shape.forked_from,
        warmup_shared: shape.warmup_shared,
        // Driver-level context the library can't see; drivers that run a
        // trace cache fill these in before journaling.
        trace_cache_len: None,
        trace_cache_bytes: None,
    };
    RunResult {
        core: core_result,
        l1: *system.l1.stats(),
        l2: system.l2.as_ref().map(|c| *c.stats()),
        l3: *system.l3.stats(),
        dram: *system.dram.stats(),
        mpp: system.mpp.as_ref().map(|m| *m.stats()),
        sys: system.stats,
        prefetch_home_is_l1,
        warmup_boundary_cycle: boundary,
        warmup_ops_requested: shape.warmup_requested,
        warmup_ops_applied: shape.warmup_applied,
        warmup_clamped: shape.warmup_applied != shape.warmup_requested,
        manifest,
        journal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use droplet_gap::Algorithm;
    use droplet_graph::{Dataset, DatasetScale};
    use std::sync::Arc;

    fn bundle(algo: Algorithm) -> TraceBundle {
        let g = if algo.needs_weights() {
            Arc::new(Dataset::Kron.build_weighted(DatasetScale::Tiny))
        } else {
            Arc::new(Dataset::Kron.build(DatasetScale::Tiny))
        };
        algo.trace(&g, 200_000)
    }

    #[test]
    fn baseline_run_produces_consistent_stats() {
        let b = bundle(Algorithm::Pr);
        let r = run_workload(&b, &SystemConfig::baseline(), 1_000);
        assert!(r.core.cycles > 0);
        assert!(r.core.instructions > 0);
        // Every L1 demand access is either a hit or descends the hierarchy.
        let l1 = &r.l1;
        let l2 = r.l2.as_ref().unwrap();
        assert_eq!(
            l1.demand_misses().total(),
            l2.demand_accesses.total(),
            "L1 misses must equal L2 accesses"
        );
        assert_eq!(l2.demand_misses().total(), r.l3.demand_accesses.total());
        // DRAM demand accesses = L3 misses + writebacks.
        assert_eq!(
            r.dram.demand_accesses,
            r.l3.demand_misses().total() + r.sys.writebacks
        );
        assert_eq!(r.dram.prefetch_accesses, 0);
    }

    #[test]
    fn droplet_speeds_up_pagerank() {
        let b = bundle(Algorithm::Pr);
        let base = run_workload(&b, &SystemConfig::baseline(), 1_000);
        let drop = run_workload(
            &b,
            &SystemConfig::baseline().with_prefetcher(PrefetcherKind::Droplet),
            1_000,
        );
        assert!(
            drop.core.cycles < base.core.cycles,
            "DROPLET {} vs baseline {}",
            drop.core.cycles,
            base.core.cycles
        );
        // The MPP actually issued property prefetches.
        let mpp = drop.mpp.unwrap();
        assert!(mpp.candidates > 0);
        assert!(drop.dram.prefetch_accesses > 0);
    }

    #[test]
    fn droplet_raises_l2_hit_rate() {
        let b = bundle(Algorithm::Pr);
        let base = run_workload(&b, &SystemConfig::baseline(), 1_000);
        let drop = run_workload(
            &b,
            &SystemConfig::baseline().with_prefetcher(PrefetcherKind::Droplet),
            1_000,
        );
        assert!(
            drop.l2_hit_rate() > base.l2_hit_rate() + 0.05,
            "L2 hit rate: {} vs {}",
            drop.l2_hit_rate(),
            base.l2_hit_rate()
        );
    }

    #[test]
    fn all_prefetcher_kinds_run_without_slowdown_catastrophe() {
        let b = bundle(Algorithm::Bfs);
        let base = run_workload(&b, &SystemConfig::baseline(), 1_000);
        for kind in PrefetcherKind::EVALUATED {
            let r = run_workload(&b, &SystemConfig::baseline().with_prefetcher(kind), 1_000);
            assert!(
                r.core.cycles < base.core.cycles * 13 / 10,
                "{kind} catastrophically slow: {} vs {}",
                r.core.cycles,
                base.core.cycles
            );
        }
    }

    #[test]
    fn no_l2_configuration_works() {
        let b = bundle(Algorithm::Cc);
        let r = run_workload(&b, &SystemConfig::baseline().with_l2(None), 1_000);
        assert!(r.l2.is_none());
        assert_eq!(r.l2_hit_rate(), 0.0);
        assert!(r.core.cycles > 0);
        assert_eq!(r.l1.demand_misses().total(), r.l3.demand_accesses.total());
    }

    #[test]
    fn service_breakdown_sums_to_one() {
        let b = bundle(Algorithm::Sssp);
        let r = run_workload(&b, &SystemConfig::baseline(), 1_000);
        for dt in DataType::ALL {
            let parts = r.service_breakdown(dt);
            let sum: f64 = parts.iter().sum();
            if r.l1.demand_accesses.get(dt) > 0 {
                assert!((sum - 1.0).abs() < 1e-9, "{dt}: {parts:?}");
            }
        }
    }

    #[test]
    fn bigger_llc_reduces_mpki() {
        let b = bundle(Algorithm::Pr);
        let small = run_workload(&b, &SystemConfig::baseline(), 1_000);
        let big = run_workload(&b, &SystemConfig::baseline().with_llc_megabytes(64), 1_000);
        assert!(big.llc_mpki() <= small.llc_mpki());
    }

    #[test]
    fn prefetching_consumes_extra_bandwidth() {
        let b = bundle(Algorithm::Pr);
        let base = run_workload(&b, &SystemConfig::baseline(), 1_000);
        let drop = run_workload(
            &b,
            &SystemConfig::baseline().with_prefetcher(PrefetcherKind::Droplet),
            1_000,
        );
        // With near-perfect accuracy a prefetched line simply replaces the
        // demand burst for the same line, so BPKI can even dip slightly
        // below baseline; it must stay in the neighbourhood and the
        // prefetch traffic itself must exist.
        assert!(
            drop.bpki() > base.bpki() * 0.85,
            "{} vs {}",
            drop.bpki(),
            base.bpki()
        );
        assert!(drop.dram.prefetch_accesses > 0);
    }

    #[test]
    fn mono_variant_prefetches_into_l1() {
        let b = bundle(Algorithm::Pr);
        let r = run_workload(
            &b,
            &SystemConfig::baseline().with_prefetcher(PrefetcherKind::MonoDropletL1),
            1_000,
        );
        assert!(r.prefetch_home_is_l1);
        assert!(
            r.l1.prefetch_fills.total() > 0,
            "monolithic variant must fill the L1"
        );
    }
}
