//! Plain-text table rendering for the figure-regeneration benches.

/// A simple fixed-width table builder.
///
/// # Example
///
/// ```
/// use droplet::report::Table;
/// let mut t = Table::new(vec!["workload".into(), "speedup".into()]);
/// t.row(vec!["PR-kron".into(), "1.30".into()]);
/// let text = t.render();
/// assert!(text.contains("PR-kron"));
/// assert!(text.contains("speedup"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(header: Vec<String>) -> Self {
        Table {
            header,
            rows: Vec::new(),
        }
    }

    /// Appends a row (short rows are padded with empty cells).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of data rows so far.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        let all = std::iter::once(&self.header).chain(self.rows.iter());
        for row in all {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |row: &[String]| -> String {
            let mut line = String::new();
            for (i, &width) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:>width$}  "));
            }
            line.trim_end().to_string()
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * cols.saturating_sub(1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Renders a one-line `key=value` reproducibility footer
/// (`study manifest: scale=Small threads=8 …`).
pub fn kv_footer(title: &str, pairs: &[(&str, String)]) -> String {
    let body = pairs
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(" ");
    format!("{title}: {body}")
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Formats a speedup ratio ("1.32x").
pub fn speedup(x: f64) -> String {
    format!("{x:.2}x")
}

/// Geometric mean of positive values; 0 if empty.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(vec!["a".into(), "metric".into()]);
        t.row(vec!["x".into(), "1".into()]);
        t.row(vec!["longer".into(), "22".into()]);
        let s = t.render();
        assert!(s.contains("metric"));
        assert!(s.lines().count() >= 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a".into(), "b".into(), "c".into()]);
        t.row(vec!["1".into()]);
        let s = t.render();
        assert!(s.contains('1'));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.1234), "12.3%");
        assert_eq!(speedup(1.5), "1.50x");
        assert_eq!(
            kv_footer("m", &[("a", "1".into()), ("b", "x".into())]),
            "m: a=1 b=x"
        );
    }

    #[test]
    fn geomean_math() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[2.0]) - 2.0).abs() < 1e-12);
    }
}
