//! Whole-system configuration: the Table I baseline plus the six prefetcher
//! configurations of Section VII-A.

use droplet_cache::{CacheConfig, ReplacementPolicy};
use droplet_cpu::CoreConfig;
use droplet_mem::DramConfig;
use droplet_obs::ObsConfig;
use droplet_prefetch::{GhbConfig, MppConfig, StreamConfig, VldpConfig};

/// The prefetcher configuration under evaluation (paper Section VII-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrefetcherKind {
    /// No prefetching: the normalization baseline of Fig. 11.
    None,
    /// Next-2-line prefetcher at the L2: a sanity baseline below the
    /// paper's evaluated set.
    NextLine,
    /// G/DC global-history-buffer prefetcher at the L2.
    Ghb,
    /// Variable Length Delta Prefetcher at the L2.
    Vldp,
    /// Conventional L2 streamer snooping all L1 misses.
    Stream,
    /// Conventional streamer + MPP1 (MPP that recognizes structure lines by
    /// address range, since the streamer is not data-aware).
    StreamMpp1,
    /// DROPLET: data-aware structure-only streamer + decoupled MC-side MPP.
    Droplet,
    /// Data-aware streamer + MPP1 implemented monolithically at the L1 —
    /// the arrangement closest to Ainsworth & Jones [40].
    MonoDropletL1,
    /// The Section VII-B extension: DROPLET that adaptively turns the
    /// streamer's data-awareness off (becoming streamMPP1) when a probing
    /// epoch shows the conventional mode servicing demand misses faster —
    /// the "no worse than streamMPP1 for BFS and road" design.
    AdaptiveDroplet,
}

impl PrefetcherKind {
    /// The six evaluated configurations, in the paper's legend order.
    pub const EVALUATED: [PrefetcherKind; 6] = [
        PrefetcherKind::Ghb,
        PrefetcherKind::Vldp,
        PrefetcherKind::Stream,
        PrefetcherKind::StreamMpp1,
        PrefetcherKind::Droplet,
        PrefetcherKind::MonoDropletL1,
    ];

    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            PrefetcherKind::None => "baseline",
            PrefetcherKind::NextLine => "next-line",
            PrefetcherKind::Ghb => "GHB",
            PrefetcherKind::Vldp => "VLDP",
            PrefetcherKind::Stream => "stream",
            PrefetcherKind::StreamMpp1 => "streamMPP1",
            PrefetcherKind::Droplet => "DROPLET",
            PrefetcherKind::MonoDropletL1 => "monoDROPLETL1",
            PrefetcherKind::AdaptiveDroplet => "DROPLET-adaptive",
        }
    }

    /// Whether the configuration includes an MPP (of either variant).
    pub fn has_mpp(self) -> bool {
        matches!(
            self,
            PrefetcherKind::StreamMpp1
                | PrefetcherKind::Droplet
                | PrefetcherKind::MonoDropletL1
                | PrefetcherKind::AdaptiveDroplet
        )
    }

    /// Whether the MPP variant recognizes structure lines by address range
    /// (MPP1) rather than relying on the MRB C-bit.
    pub fn mpp_recognizes_structure(self) -> bool {
        // The adaptive variant must recognize structure lines by range:
        // in conventional mode its streamer requests carry no C-bit.
        matches!(
            self,
            PrefetcherKind::StreamMpp1
                | PrefetcherKind::MonoDropletL1
                | PrefetcherKind::AdaptiveDroplet
        )
    }

    /// Whether all prefetching is wired monolithically at the L1.
    pub fn monolithic_l1(self) -> bool {
        matches!(self, PrefetcherKind::MonoDropletL1)
    }
}

impl std::fmt::Display for PrefetcherKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Full system configuration (paper Table I + Table V).
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Core parameters.
    pub core: CoreConfig,
    /// L1D geometry.
    pub l1: CacheConfig,
    /// Private L2 geometry; `None` models the "no private L2" point of
    /// Fig. 4b.
    pub l2: Option<CacheConfig>,
    /// Shared L3 geometry.
    pub l3: CacheConfig,
    /// DRAM timing.
    pub dram: DramConfig,
    /// Data TLB entries.
    pub dtlb_entries: usize,
    /// Page-walk latency charged on a DTLB miss (cycles).
    pub tlb_walk_latency: u64,
    /// The prefetcher configuration under test.
    pub prefetcher: PrefetcherKind,
    /// Streamer parameters (used by Stream/StreamMPP1/DROPLET/mono).
    pub stream: StreamConfig,
    /// GHB parameters.
    pub ghb: GhbConfig,
    /// VLDP parameters.
    pub vldp: VldpConfig,
    /// MPP parameters.
    pub mpp: MppConfig,
    /// Memory-request-buffer capacity.
    pub mrb_entries: usize,
    /// L1 miss-status-holding registers: the cap on outstanding demand
    /// misses per core (10 on the Nehalem-class machines SNIPER validates
    /// against). This — together with the load-load chains — is what makes
    /// a 4× instruction window nearly useless (Fig. 3).
    pub mshrs: usize,
    /// Probing-epoch length (in demand L1 misses) for the adaptive
    /// DROPLET extension.
    pub adaptive_epoch_misses: u64,
    /// Epoch-sampling observability (`None` = off, the default). Purely a
    /// measurement option: it never changes simulated behavior, and it is
    /// excluded from the manifest's config hash.
    pub obs: Option<ObsConfig>,
}

impl SystemConfig {
    /// The Table I baseline with no prefetching.
    pub fn baseline() -> Self {
        SystemConfig {
            core: CoreConfig::baseline(),
            l1: CacheConfig::l1d(),
            l2: Some(CacheConfig::l2()),
            l3: CacheConfig::l3(),
            dram: DramConfig::ddr3(),
            dtlb_entries: 64,
            tlb_walk_latency: 30,
            prefetcher: PrefetcherKind::None,
            stream: StreamConfig::conventional(),
            ghb: GhbConfig::paper(),
            vldp: VldpConfig::paper(),
            mpp: MppConfig::paper(),
            mrb_entries: 256,
            mshrs: 10,
            adaptive_epoch_misses: 50_000,
            obs: None,
        }
    }

    /// A copy of this configuration with `kind` selected, the streamer
    /// mode adjusted to match (data-aware for DROPLET and the monolithic
    /// variant). Borrows so sweep loops can derive many configurations
    /// from one base without cloning at every call site.
    #[must_use]
    pub fn with_prefetcher(&self, kind: PrefetcherKind) -> Self {
        let mut cfg = self.clone();
        cfg.prefetcher = kind;
        // Flip the streamer mode but keep sizing (tracker count etc.) so
        // scaled-down configurations stay scaled.
        cfg.stream.data_aware = matches!(
            kind,
            PrefetcherKind::Droplet
                | PrefetcherKind::MonoDropletL1
                | PrefetcherKind::AdaptiveDroplet
        );
        cfg
    }

    /// Replaces the L3 with a CACTI-latency-scaled LLC of `megabytes`
    /// (the Fig. 4a sweep).
    #[must_use]
    pub fn with_llc_megabytes(mut self, megabytes: u64) -> Self {
        self.l3 = CacheConfig::l3_sized(megabytes);
        self
    }

    /// Replaces the private L2 (the Fig. 4b sweep); `None` removes it.
    #[must_use]
    pub fn with_l2(mut self, l2: Option<CacheConfig>) -> Self {
        self.l2 = l2;
        self
    }

    /// Swaps the LLC replacement policy (the policy-laboratory study).
    /// Flows into `warmup_key`/`config_hash` via the cache config's Debug
    /// form, so differently-policied runs never share a fork warm-up.
    #[must_use]
    pub fn with_l3_policy(mut self, policy: ReplacementPolicy) -> Self {
        self.l3 = self.l3.with_policy(policy);
        self
    }

    /// Swaps the L2 replacement policy; a no-op when the L2 is removed.
    #[must_use]
    pub fn with_l2_policy(mut self, policy: ReplacementPolicy) -> Self {
        self.l2 = self.l2.map(|c| c.with_policy(policy));
        self
    }

    /// Swaps the L1D replacement policy.
    #[must_use]
    pub fn with_l1_policy(mut self, policy: ReplacementPolicy) -> Self {
        self.l1 = self.l1.with_policy(policy);
        self
    }

    /// Enables epoch-sampling observability with the given configuration.
    #[must_use]
    pub fn with_obs(mut self, obs: ObsConfig) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Scales the instruction window (ROB) by `factor` — the Fig. 3
    /// experiment. The load/store queues keep their Table I sizes: the
    /// paper varies the window, not the whole core, and the fixed queues
    /// are part of why extra window exposes so little MLP.
    #[must_use]
    pub fn with_window_scale(mut self, factor: u32) -> Self {
        self.core.rob *= factor;
        self
    }

    /// A fingerprint of every field that influences simulated state *during
    /// warm-up* — the partition that decides when two sweep points may
    /// share one warmed snapshot ([`crate::fork`]).
    ///
    /// Under demand-only warm-up, prefetch engines, the MPP, and the
    /// adaptive controller are inert until `warmup_done`, so the
    /// **fork-safe** fields — `prefetcher`, `stream`, `ghb`, `vldp`, `mpp`,
    /// `mrb_entries` (the MRB is only filled by prefetch paths, hence empty
    /// at the boundary), `adaptive_epoch_misses`, and `obs` (measurement
    /// only, reset at the boundary) — are excluded. Everything else is
    /// **warmup-relevant** and hashed.
    ///
    /// The exhaustive destructuring below is the compile-time check: adding
    /// a field to `SystemConfig` breaks this function until the new field is
    /// explicitly classified into one of the two lists.
    pub fn warmup_key(&self) -> u64 {
        let SystemConfig {
            // Warmup-relevant: shape demand-path state before the boundary.
            core,
            l1,
            l2,
            l3,
            dram,
            dtlb_entries,
            tlb_walk_latency,
            mshrs,
            // Fork-safe: inert until `warmup_done` under demand-only warm-up.
            prefetcher: _,
            stream: _,
            ghb: _,
            vldp: _,
            mpp: _,
            mrb_entries: _,
            adaptive_epoch_misses: _,
            obs: _,
        } = self;
        let repr = format!(
            "{core:?}|{l1:?}|{l2:?}|{l3:?}|{dram:?}|{dtlb_entries}|{tlb_walk_latency}|{mshrs}"
        );
        droplet_obs::fnv1a(repr.as_bytes())
    }

    /// A hierarchy scaled down ~512× for tests and examples on tiny
    /// datasets: the capacity *ratios* of Table I are preserved (structure
    /// working sets exceed the LLC, property working sets exceed the L2),
    /// so the paper's qualitative behaviours reproduce in milliseconds.
    pub fn test_scale() -> Self {
        let mut cfg = Self::baseline();
        cfg.l1 = CacheConfig {
            name: "L1D",
            size_bytes: 1024,
            assoc: 8,
            tag_latency: 1,
            data_latency: 4,
            policy: ReplacementPolicy::Lru,
        };
        cfg.l2 = Some(CacheConfig {
            name: "L2",
            size_bytes: 8 * 1024,
            assoc: 8,
            tag_latency: 3,
            data_latency: 8,
            policy: ReplacementPolicy::Lru,
        });
        cfg.l3 = CacheConfig {
            name: "L3",
            size_bytes: 16 * 1024,
            assoc: 16,
            tag_latency: 10,
            data_latency: 30,
            policy: ReplacementPolicy::Lru,
        };
        // Tiny datasets have few pages; scale the stream trackers down too
        // so tracker contention (Section V-B1) stays observable.
        cfg.stream.trackers = 4;
        // Prefetch lookahead must scale with L2 turnover, or timely lines
        // die before use in the miniature hierarchy.
        cfg.stream.distance = 8;
        cfg.stream.degree = 2;
        // Scale the MPP's VAB/PAB occupancy bound with the hierarchy so
        // outstanding property prefetches cannot thrash the whole LLC.
        cfg.mpp.vab_entries = 16;
        cfg.mpp.pab_entries = 16;
        cfg.adaptive_epoch_misses = 10_000;
        cfg
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_table_i() {
        let c = SystemConfig::baseline();
        assert_eq!(c.core.rob, 128);
        assert_eq!(c.l1.size_bytes, 32 * 1024);
        assert_eq!(c.l2.as_ref().unwrap().size_bytes, 256 * 1024);
        assert_eq!(c.l3.size_bytes, 8 * 1024 * 1024);
        assert_eq!(c.prefetcher, PrefetcherKind::None);
        assert_eq!(c.mrb_entries, 256);
    }

    #[test]
    fn with_prefetcher_sets_streamer_mode() {
        let d = SystemConfig::baseline().with_prefetcher(PrefetcherKind::Droplet);
        assert!(d.stream.data_aware);
        let s = SystemConfig::baseline().with_prefetcher(PrefetcherKind::StreamMpp1);
        assert!(!s.stream.data_aware);
        let m = SystemConfig::baseline().with_prefetcher(PrefetcherKind::MonoDropletL1);
        assert!(m.stream.data_aware);
        assert!(m.prefetcher.monolithic_l1());
    }

    #[test]
    fn kind_predicates() {
        assert!(PrefetcherKind::Droplet.has_mpp());
        assert!(!PrefetcherKind::Droplet.mpp_recognizes_structure());
        assert!(PrefetcherKind::StreamMpp1.mpp_recognizes_structure());
        assert!(!PrefetcherKind::Stream.has_mpp());
        assert_eq!(PrefetcherKind::EVALUATED.len(), 6);
        assert_eq!(PrefetcherKind::Droplet.to_string(), "DROPLET");
    }

    #[test]
    fn sweep_builders_apply() {
        let c = SystemConfig::baseline()
            .with_llc_megabytes(32)
            .with_l2(None)
            .with_window_scale(4);
        assert_eq!(c.l3.size_bytes, 32 * 1024 * 1024);
        assert!(c.l2.is_none());
        assert_eq!(c.core.rob, 512);
    }
}
