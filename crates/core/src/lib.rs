//! **DROPLET** — a from-scratch reproduction of *"Analysis and Optimization
//! of the Memory Hierarchy for Graph Processing Workloads"* (HPCA 2019):
//! the data-aware, physically-decoupled graph prefetcher, together with the
//! full simulation substrate it is evaluated on.
//!
//! The crate wires the workspace's substrates into a full system:
//! data-type-tagged workload traces ([`droplet_gap`]), an out-of-order core
//! model ([`droplet_cpu`]), a three-level inclusive cache hierarchy
//! ([`droplet_cache`]), a DRAM + memory-controller model ([`droplet_mem`]),
//! and the six evaluated prefetcher configurations ([`droplet_prefetch`]).
//!
//! # Quickstart
//!
//! ```
//! use droplet::{PrefetcherKind, SystemConfig, run_workload};
//! use droplet_gap::Algorithm;
//! use droplet_graph::{Dataset, DatasetScale};
//! use std::sync::Arc;
//!
//! let g = Arc::new(Dataset::Kron.build(DatasetScale::Tiny));
//! let bundle = Algorithm::Pr.trace(&g, 60_000);
//!
//! let base = run_workload(&bundle, &SystemConfig::baseline(), 10_000);
//! let drop = run_workload(
//!     &bundle,
//!     &SystemConfig::baseline().with_prefetcher(PrefetcherKind::Droplet),
//!     10_000,
//! );
//! // DROPLET never slows the run down on this streaming workload.
//! assert!(drop.core.cycles <= base.core.cycles * 11 / 10);
//! ```

pub mod config;
pub mod datasets;
pub mod experiments;
pub mod fork;
pub mod overhead;
pub mod pool;
pub mod report;
pub mod specparse;
pub mod system;
pub mod trace_cache;

pub use config::{PrefetcherKind, SystemConfig};
pub use datasets::WorkloadSpec;
pub use fork::{
    run_forked, run_forked_from, run_sweep, warm_snapshot, warm_snapshot_from, SweepCell,
    WarmupSnapshot,
};
pub use pool::JobPool;
pub use specparse::SpecError;
pub use system::{
    config_hash, run_workload, run_workload_from, run_workload_scalar, run_workload_with_stream,
    ForkMutation, HotLaneMutation, RunResult, System, SystemProbe, SystemSnapshot, SystemStats,
};
pub use trace_cache::TraceCache;

// Re-export the substrate crates so downstream users need only `droplet`.
pub use droplet_cache as cache;
pub use droplet_cpu as cpu;
pub use droplet_gap as gap;
pub use droplet_graph as graph;
pub use droplet_mem as mem;
pub use droplet_obs as obs;
pub use droplet_prefetch as prefetch;
pub use droplet_trace as trace;
