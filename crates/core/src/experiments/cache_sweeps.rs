//! Cache-hierarchy sensitivity sweeps (paper Fig. 4a/4b/4c).

use crate::datasets::WorkloadSpec;
use crate::experiments::ExperimentCtx;
use crate::fork::{run_sweep, SweepCell};
use crate::report::{geomean, pct, Table};
use droplet_trace::DataType;
use std::sync::Arc;

/// One LLC capacity point of the Fig. 4a sweep.
#[derive(Debug, Clone)]
pub struct LlcPoint {
    /// LLC capacity in bytes.
    pub size_bytes: u64,
    /// Mean LLC demand MPKI across the workload matrix.
    pub mean_mpki: f64,
    /// Geomean speedup over the 8 MB baseline.
    pub geomean_speedup: f64,
    /// Mean off-chip demand fraction per data type (Fig. 4c).
    pub offchip_by_type: [f64; 3],
}

/// Fig. 4a (and 4c) — shared-LLC capacity sensitivity.
#[derive(Debug, Clone)]
pub struct Fig04a {
    /// One entry per swept capacity (8/16/32/64 MB).
    pub points: Vec<LlcPoint>,
}

impl Fig04a {
    /// Renders the Fig. 4a table.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "LLC".into(),
            "mean MPKI".into(),
            "geomean speedup".into(),
        ]);
        for p in &self.points {
            t.row(vec![
                size_label(p.size_bytes),
                format!("{:.1}", p.mean_mpki),
                format!("{:.3}x", p.geomean_speedup),
            ]);
        }
        format!(
            "Fig. 4a — LLC capacity sweep\n{}\n\
             paper: MPKI 20 -> 16 -> 12 -> 10; speedups +7% / +17.4% / +7.6%\n\
             (the optimum balances miss rate against access latency)\n",
            t.render()
        )
    }
}

/// Formats a capacity as "16 KB" / "8 MB".
fn size_label(bytes: u64) -> String {
    if bytes >= 1024 * 1024 {
        format!("{} MB", bytes / (1024 * 1024))
    } else {
        format!("{} KB", bytes / 1024)
    }
}

/// Runs the Fig. 4a/4c sweep; every (capacity, workload) cell fans out
/// over `ctx.pool`, with bundles shared through the trace cache.
pub fn fig04a_llc_sweep(ctx: &ExperimentCtx) -> Fig04a {
    let specs = WorkloadSpec::matrix(ctx.scale);
    ctx.pool.run(
        specs
            .iter()
            .map(|spec| {
                move || {
                    ctx.trace(spec);
                }
            })
            .collect(),
    );

    let cfgs: Vec<_> = ctx
        .llc_sweep()
        .into_iter()
        .map(|l3| {
            let mut cfg = ctx.base.clone();
            cfg.l3 = l3;
            cfg
        })
        .collect();
    // Every capacity has its own warmup-relevant key (the L3 shape changes
    // the warmed state), so run_sweep degrades to full replay here; going
    // through it anyway keeps the drivers on one code path.
    let mut cells = Vec::new();
    for cfg in &cfgs {
        for &spec in &specs {
            cells.push(SweepCell {
                bundle: Arc::clone(&ctx.trace(&spec)),
                cfg: cfg.clone(),
            });
        }
    }
    let results = run_sweep(&ctx.pool, &cells, ctx.warmup, ctx.fork_sweeps);

    // The first chunk is the base-capacity point speedups are measured
    // against.
    let n = specs.len();
    let base_cycles: Vec<u64> = results[..n].iter().map(|r| r.core.cycles).collect();
    let mut points = Vec::new();
    for (cfg, chunk) in cfgs.iter().zip(results.chunks(n)) {
        let speedups: Vec<f64> = chunk
            .iter()
            .zip(&base_cycles)
            .map(|(r, &b)| b as f64 / r.core.cycles.max(1) as f64)
            .collect();
        let mut offchip = [0.0f64; 3];
        for r in chunk {
            for dt in DataType::ALL {
                offchip[dt.index()] += r.offchip_fraction(dt) / n as f64;
            }
        }
        points.push(LlcPoint {
            size_bytes: cfg.l3.size_bytes,
            mean_mpki: chunk.iter().map(|r| r.llc_mpki()).sum::<f64>() / n.max(1) as f64,
            geomean_speedup: geomean(&speedups),
            offchip_by_type: offchip,
        });
    }
    Fig04a { points }
}

/// Renders Fig. 4c from an existing Fig. 4a sweep.
pub fn fig04c_offchip_by_type(sweep: &Fig04a) -> String {
    let mut t = Table::new(vec![
        "LLC".into(),
        "structure off-chip".into(),
        "property off-chip".into(),
        "intermediate off-chip".into(),
    ]);
    for p in &sweep.points {
        t.row(vec![
            size_label(p.size_bytes),
            pct(p.offchip_by_type[DataType::Structure.index()]),
            pct(p.offchip_by_type[DataType::Property.index()]),
            pct(p.offchip_by_type[DataType::Intermediate.index()]),
        ]);
    }
    format!(
        "Fig. 4c — off-chip demand accesses by data type vs LLC capacity\n{}\n\
         paper: property benefits most from capacity; structure (7.5% off-chip)\n\
         barely responds; intermediate is already on-chip (1.9%).\n",
        t.render()
    )
}

/// One L2-configuration point of the Fig. 4b sweep.
#[derive(Debug, Clone)]
pub struct L2Point {
    /// Configuration label ("none", "256KB/8w", ...).
    pub label: String,
    /// Mean L2 demand hit rate (0 for "none").
    pub mean_hit_rate: f64,
    /// Geomean speedup over the 256 KB baseline.
    pub geomean_speedup: f64,
}

/// Fig. 4b — private-L2 sensitivity (capacity and associativity).
#[derive(Debug, Clone)]
pub struct Fig04b {
    /// One entry per swept configuration.
    pub points: Vec<L2Point>,
}

impl Fig04b {
    /// Renders the Fig. 4b table.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "L2 config".into(),
            "mean hit rate".into(),
            "geomean speedup vs 256KB".into(),
        ]);
        for p in &self.points {
            t.row(vec![
                p.label.clone(),
                pct(p.mean_hit_rate),
                format!("{:.3}x", p.geomean_speedup),
            ]);
        }
        format!(
            "Fig. 4b — private L2 sensitivity\n{}\n\
             paper: hit rate ~10.6% at baseline, 15.3% at 2x capacity, 10.9% at 4x\n\
             associativity; performance is insensitive — no-L2 matches 256KB.\n",
            t.render()
        )
    }
}

/// Runs the Fig. 4b sweep; every (configuration, workload) cell fans out
/// over `ctx.pool`, with bundles shared through the trace cache.
pub fn fig04b_l2_sweep(ctx: &ExperimentCtx) -> Fig04b {
    let specs = WorkloadSpec::matrix(ctx.scale);
    ctx.pool.run(
        specs
            .iter()
            .map(|spec| {
                move || {
                    ctx.trace(spec);
                }
            })
            .collect(),
    );

    let cfgs: Vec<_> = ctx
        .l2_sweep()
        .into_iter()
        .map(|(label, l2)| (label, ctx.base.clone().with_l2(l2)))
        .collect();
    // The baseline-cycles chunk (base L2 point) first, then one chunk per
    // swept configuration.
    // L2 shape is warmup-relevant, so each configuration forms its own
    // group; the shared-warmup fast path only kicks in for cells that agree
    // on the hierarchy (e.g. the duplicated base point).
    let mut cells: Vec<SweepCell> = specs
        .iter()
        .map(|&spec| SweepCell {
            bundle: Arc::clone(&ctx.trace(&spec)),
            cfg: ctx.base.clone(),
        })
        .collect();
    for (_, cfg) in &cfgs {
        for &spec in &specs {
            cells.push(SweepCell {
                bundle: Arc::clone(&ctx.trace(&spec)),
                cfg: cfg.clone(),
            });
        }
    }
    let results = run_sweep(&ctx.pool, &cells, ctx.warmup, ctx.fork_sweeps);

    let n = specs.len();
    let base_cycles: Vec<u64> = results[..n].iter().map(|r| r.core.cycles).collect();
    let mut points = Vec::new();
    for ((label, _), chunk) in cfgs.into_iter().zip(results[n..].chunks(n)) {
        let speedups: Vec<f64> = chunk
            .iter()
            .zip(&base_cycles)
            .map(|(r, &b)| b as f64 / r.core.cycles.max(1) as f64)
            .collect();
        points.push(L2Point {
            label,
            mean_hit_rate: chunk.iter().map(|r| r.l2_hit_rate()).sum::<f64>() / n.max(1) as f64,
            geomean_speedup: geomean(&speedups),
        });
    }
    Fig04b { points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::run_workload;
    use droplet_gap::Algorithm;
    use droplet_graph::Dataset;

    /// A cut-down sweep over one workload so tests stay fast.
    fn one_bundle(ctx: &ExperimentCtx) -> droplet_gap::TraceBundle {
        WorkloadSpec {
            algorithm: Algorithm::Pr,
            dataset: Dataset::LiveJournal,
            scale: ctx.scale,
        }
        .build_trace_with_budget(ctx.budget)
    }

    #[test]
    fn llc_capacity_reduces_mpki_monotonically() {
        let ctx = ExperimentCtx::tiny();
        let bundle = one_bundle(&ctx);
        let mut last = f64::INFINITY;
        for l3 in ctx.llc_sweep() {
            let mut cfg = ctx.base.clone();
            cfg.l3 = l3;
            let r = run_workload(&bundle, &cfg, ctx.warmup);
            let mpki = r.llc_mpki();
            assert!(
                mpki <= last + 1e-9,
                "MPKI must not grow: {mpki} after {last}"
            );
            last = mpki;
        }
    }

    #[test]
    fn l2_performance_is_insensitive() {
        let ctx = ExperimentCtx::tiny();
        let bundle = one_bundle(&ctx);
        let with = run_workload(&bundle, &ctx.base, ctx.warmup);
        let without = run_workload(&bundle, &ctx.base.clone().with_l2(None), ctx.warmup);
        let ratio = with.core.cycles as f64 / without.core.cycles as f64;
        assert!(
            (0.85..1.15).contains(&ratio),
            "no-L2 should roughly match the base L2: ratio {ratio}"
        );
    }

    #[test]
    fn renders_mention_figures() {
        let sweep = Fig04a {
            points: vec![LlcPoint {
                size_bytes: 8 * 1024 * 1024,
                mean_mpki: 20.0,
                geomean_speedup: 1.0,
                offchip_by_type: [0.07, 0.2, 0.02],
            }],
        };
        assert!(sweep.render().contains("Fig. 4a"));
        assert!(fig04c_offchip_by_type(&sweep).contains("Fig. 4c"));
        let b = Fig04b {
            points: vec![L2Point {
                label: "none".into(),
                mean_hit_rate: 0.0,
                geomean_speedup: 1.0,
            }],
        };
        assert!(b.render().contains("Fig. 4b"));
    }
}
