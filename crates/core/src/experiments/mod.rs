//! Experiment drivers regenerating every figure of the paper's
//! characterization (Section IV) and evaluation (Section VII) sections.
//!
//! Each driver returns a typed result with a `render()` method producing
//! the figure's rows as a plain-text table; the `droplet-bench` crate wraps
//! one bench target around each. EXPERIMENTS.md records paper-vs-measured.

pub mod ablations;
pub mod cache_sweeps;
pub mod characterization;
pub mod policy_study;
pub mod prefetch_study;
pub mod reuse;

pub use ablations::{ablation_decoupling, ablation_mpp_sizing};
pub use cache_sweeps::{fig04a_llc_sweep, fig04b_l2_sweep, fig04c_offchip_by_type};
pub use characterization::{
    fig01_cycle_stack, fig03_rob_sweep, fig05_06_chains, fig07_hierarchy_usage,
};
pub use policy_study::{
    run_policy_study, run_policy_study_on, PolicyLevel, PolicyStudy, PolicyStudyRow, STUDY_POLICIES,
};
pub use prefetch_study::{PrefetchStudy, StudyRow};
pub use reuse::tab_reuse_distances;

use crate::config::SystemConfig;
use crate::datasets::WorkloadSpec;
use crate::pool::JobPool;
use crate::trace_cache::TraceCache;
use droplet_cache::{CacheConfig, ReplacementPolicy};
use droplet_gap::TraceBundle;
use droplet_graph::DatasetScale;
use std::sync::Arc;

/// Shared experiment context: dataset scale, op budget, warm-up prefix, and
/// the base system configuration experiments start from (the Table I
/// baseline at Sim scale, a proportionally shrunk hierarchy at Tiny/Small
/// scales so cache-pressure behaviour survives in fast runs).
///
/// The context also carries the process-shared [`TraceCache`] (clones share
/// it) and the [`JobPool`] the drivers fan their independent simulation
/// cells over; `DROPLET_THREADS=1` forces fully serial execution.
#[derive(Debug, Clone)]
pub struct ExperimentCtx {
    /// Dataset scale to build.
    pub scale: DatasetScale,
    /// Trace op budget per workload.
    pub budget: u64,
    /// Warm-up ops excluded from statistics.
    pub warmup: usize,
    /// The baseline system configuration experiments derive from.
    pub base: SystemConfig,
    /// Shared trace store: each (workload, budget) bundle is built once.
    pub traces: TraceCache,
    /// Worker pool the drivers fan independent cells over.
    pub pool: JobPool,
    /// Whether sweep drivers share warm-up across same-prefix cells via
    /// [`crate::fork::run_sweep`] (on by default; results are bit-identical
    /// either way, only wall time changes).
    pub fork_sweeps: bool,
}

impl ExperimentCtx {
    /// The context used by the figure benches (Sim-scale datasets, Table I
    /// hierarchy).
    pub fn sim() -> Self {
        Self::at(DatasetScale::Sim)
    }

    /// A fast context for tests (tiny datasets, scaled-down hierarchy).
    pub fn tiny() -> Self {
        Self::at(DatasetScale::Tiny)
    }

    /// Small-scale context for examples (scaled-down hierarchy).
    pub fn small() -> Self {
        Self::at(DatasetScale::Small)
    }

    /// Context at an arbitrary scale with the default budgets.
    pub fn at(scale: DatasetScale) -> Self {
        let base = match scale {
            DatasetScale::Sim => SystemConfig::baseline(),
            DatasetScale::Tiny => SystemConfig::test_scale(),
            DatasetScale::Small => {
                // Small graphs (~32 K vertices): hierarchy scaled ~32×.
                let mut cfg = SystemConfig::baseline();
                cfg.l1 = CacheConfig {
                    name: "L1D",
                    size_bytes: 4 * 1024,
                    assoc: 8,
                    tag_latency: 1,
                    data_latency: 4,
                    policy: ReplacementPolicy::Lru,
                };
                cfg.l2 = Some(CacheConfig {
                    name: "L2",
                    size_bytes: 32 * 1024,
                    assoc: 8,
                    tag_latency: 3,
                    data_latency: 8,
                    policy: ReplacementPolicy::Lru,
                });
                cfg.l3 = CacheConfig {
                    name: "L3",
                    size_bytes: 256 * 1024,
                    assoc: 16,
                    tag_latency: 10,
                    data_latency: 30,
                    policy: ReplacementPolicy::Lru,
                };
                cfg.stream.trackers = 16;
                // Prefetch lookahead scales with L2 turnover (see the
                // test-scale configuration for the same reasoning).
                cfg.stream.distance = 8;
                cfg.stream.degree = 2;
                cfg.mpp.vab_entries = 64;
                cfg.mpp.pab_entries = 64;
                cfg.adaptive_epoch_misses = 25_000;
                cfg
            }
        };
        ExperimentCtx {
            scale,
            budget: WorkloadSpec::default_budget(scale),
            warmup: WorkloadSpec::default_warmup(scale),
            base,
            traces: TraceCache::new(),
            pool: JobPool::from_env(),
            fork_sweeps: true,
        }
    }

    /// Overrides the worker count (equivalent to `DROPLET_THREADS`).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.pool = JobPool::with_threads(threads);
        self
    }

    /// Disables (or re-enables) warm-up sharing in sweep drivers.
    #[must_use]
    pub fn with_fork_sweeps(mut self, on: bool) -> Self {
        self.fork_sweeps = on;
        self
    }

    /// The trace bundle of `spec` at this context's budget, via the shared
    /// cache — repeated calls (from any driver or worker) build it once.
    pub fn trace(&self, spec: &WorkloadSpec) -> Arc<TraceBundle> {
        self.traces.get_or_build(*spec, self.budget)
    }

    /// The four-point LLC capacity sweep of Fig. 4a: the base LLC scaled
    /// ×1/×2/×4/×8 with the CACTI-style latency growth of Table I's notes.
    pub fn llc_sweep(&self) -> Vec<CacheConfig> {
        let lat = [(10, 30), (11, 35), (13, 41), (15, 48)];
        (0..4)
            .map(|i| CacheConfig {
                name: "L3",
                size_bytes: self.base.l3.size_bytes << i,
                assoc: self.base.l3.assoc,
                tag_latency: lat[i].0,
                data_latency: lat[i].1,
                policy: self.base.l3.policy,
            })
            .collect()
    }

    /// The Fig. 4b private-L2 sweep: none, ×0.5/×1/×2 capacity, ×2/×4
    /// associativity.
    pub fn l2_sweep(&self) -> Vec<(String, Option<CacheConfig>)> {
        let base = self.base.l2.clone().expect("base config has an L2");
        let sized = |bytes: u64, assoc: usize| CacheConfig {
            name: "L2",
            size_bytes: bytes,
            assoc,
            tag_latency: base.tag_latency,
            data_latency: base.data_latency,
            policy: base.policy,
        };
        let b = base.size_bytes;
        let label = |bytes: u64, assoc: usize| format!("{}KB/{}w", bytes / 1024, assoc);
        vec![
            ("none".into(), None),
            (label(b / 2, base.assoc), Some(sized(b / 2, base.assoc))),
            (label(b, base.assoc), Some(sized(b, base.assoc))),
            (label(b * 2, base.assoc), Some(sized(b * 2, base.assoc))),
            (label(b, base.assoc * 2), Some(sized(b, base.assoc * 2))),
            (label(b, base.assoc * 4), Some(sized(b, base.assoc * 4))),
        ]
    }
}
