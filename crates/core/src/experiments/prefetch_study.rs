//! The prefetcher evaluation study behind Figs. 11–15: every workload cell
//! run under a chosen set of prefetcher configurations, with all the
//! metrics those figures report.

use crate::config::PrefetcherKind;
use crate::datasets::WorkloadSpec;
use crate::experiments::ExperimentCtx;
use crate::fork::{run_sweep, SweepCell};
use crate::report::{geomean, kv_footer, pct, Table};
use crate::system::RunResult;
use droplet_gap::Algorithm;
use droplet_trace::DataType;
use std::collections::HashMap;
use std::sync::Arc;

/// Metrics of one (workload, configuration) run.
#[derive(Debug, Clone)]
pub struct StudyRow {
    /// Workload label ("CC-kron").
    pub label: String,
    /// The algorithm, for per-algorithm summaries.
    pub algorithm: Algorithm,
    /// The configuration.
    pub kind: PrefetcherKind,
    /// Cycles in the measurement window.
    pub cycles: u64,
    /// Speedup over the no-prefetch baseline of the same workload.
    pub speedup: f64,
    /// L2 demand hit rate (Fig. 12).
    pub l2_hit_rate: f64,
    /// LLC demand MPKI by data type (Fig. 13).
    pub llc_mpki_by_type: [f64; 3],
    /// Prefetch accuracy by data type at the prefetch home (Fig. 14).
    pub accuracy_by_type: [f64; 3],
    /// Bus accesses per kilo instruction (Fig. 15).
    pub bpki: f64,
}

/// The study results over a workload matrix × configuration set.
#[derive(Debug, Clone)]
pub struct PrefetchStudy {
    /// Baseline rows (kind == None), one per workload.
    pub baselines: Vec<StudyRow>,
    /// One row per (workload, evaluated configuration).
    pub rows: Vec<StudyRow>,
    /// The configurations evaluated, in order.
    pub kinds: Vec<PrefetcherKind>,
    /// One-line reproducibility manifest (scale, budget, warm-up, thread
    /// count, cell count, wall time); appended to every rendered figure.
    /// Wall time makes this non-deterministic — compare rows, not this.
    pub manifest: String,
}

fn row_from(
    result: &RunResult,
    spec: &WorkloadSpec,
    kind: PrefetcherKind,
    base_cycles: u64,
) -> StudyRow {
    let mut mpki = [0.0; 3];
    let mut acc = [0.0; 3];
    for dt in DataType::ALL {
        mpki[dt.index()] = result.llc_mpki_of(dt);
        acc[dt.index()] = result.prefetch_accuracy(dt);
    }
    StudyRow {
        label: spec.label(),
        algorithm: spec.algorithm,
        kind,
        cycles: result.core.cycles,
        speedup: base_cycles as f64 / result.core.cycles.max(1) as f64,
        l2_hit_rate: result.l2_hit_rate(),
        llc_mpki_by_type: mpki,
        accuracy_by_type: acc,
        bpki: result.bpki(),
    }
}

/// Runs the study for `kinds` over the full matrix of `ctx`.
///
/// Every (workload, configuration) cell is an independent simulation over
/// shared read-only inputs, so the cells fan out over `ctx.pool`; results
/// come back in submission order, making the output identical to a serial
/// run (`DROPLET_THREADS=1` forces the serial path for debugging).
pub fn run_study(ctx: &ExperimentCtx, kinds: &[PrefetcherKind]) -> PrefetchStudy {
    let wall = std::time::Instant::now();
    let specs = WorkloadSpec::matrix(ctx.scale);

    // Phase 1 — warm the shared trace cache, one parallel build per unique
    // bundle, so phase-2 workers never serialize on a bundle build.
    ctx.pool.run(
        specs
            .iter()
            .map(|spec| {
                move || {
                    ctx.trace(spec);
                }
            })
            .collect(),
    );

    // One derived configuration per evaluated kind, shared by every
    // workload cell instead of being re-derived per cell.
    let cfgs: Vec<_> = kinds.iter().map(|&k| ctx.base.with_prefetcher(k)).collect();

    // Phase 2 — every (workload, configuration) cell, baseline first so
    // speedups can be assembled from the ordered results. The sweep runner
    // warms each workload once and forks the per-configuration measurement
    // regions out (all cells of a workload share a warmup-relevant prefix).
    let mut cells: Vec<SweepCell> = Vec::new();
    for &spec in &specs {
        let bundle = ctx.trace(&spec);
        cells.push(SweepCell {
            bundle: Arc::clone(&bundle),
            cfg: ctx.base.clone(),
        });
        for cfg in &cfgs {
            cells.push(SweepCell {
                bundle: Arc::clone(&bundle),
                cfg: cfg.clone(),
            });
        }
    }
    let results = run_sweep(&ctx.pool, &cells, ctx.warmup, ctx.fork_sweeps);

    let mut baselines = Vec::new();
    let mut rows = Vec::new();
    let stride = 1 + kinds.len();
    for (spec, group) in specs.iter().zip(results.chunks(stride)) {
        let base_cycles = group[0].core.cycles;
        baselines.push(row_from(&group[0], spec, PrefetcherKind::None, base_cycles));
        for (r, &kind) in group[1..].iter().zip(kinds) {
            rows.push(row_from(r, spec, kind, base_cycles));
        }
    }
    let manifest = kv_footer(
        "study manifest",
        &[
            ("scale", format!("{:?}", ctx.scale)),
            ("budget", ctx.budget.to_string()),
            ("warmup", ctx.warmup.to_string()),
            ("threads", ctx.pool.threads().to_string()),
            ("workloads", specs.len().to_string()),
            ("configs", kinds.len().to_string()),
            ("cells", cells.len().to_string()),
            ("forked", ctx.fork_sweeps.to_string()),
            (
                "wall_ms",
                format!("{:.0}", wall.elapsed().as_secs_f64() * 1000.0),
            ),
        ],
    );
    PrefetchStudy {
        baselines,
        rows,
        kinds: kinds.to_vec(),
        manifest,
    }
}

impl PrefetchStudy {
    /// The manifest as a render suffix ("" when no manifest was recorded,
    /// e.g. for hand-assembled studies in tests).
    fn footer(&self) -> String {
        if self.manifest.is_empty() {
            String::new()
        } else {
            format!("{}\n", self.manifest)
        }
    }

    /// Geomean speedup of `kind` across the datasets of `algorithm`
    /// (one cell of Fig. 11b).
    pub fn geomean_speedup(&self, algorithm: Algorithm, kind: PrefetcherKind) -> f64 {
        let v: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.algorithm == algorithm && r.kind == kind)
            .map(|r| r.speedup)
            .collect();
        geomean(&v)
    }

    /// Mean of a per-row metric over the datasets of `algorithm` × `kind`.
    pub fn mean_metric(
        &self,
        algorithm: Algorithm,
        kind: PrefetcherKind,
        f: impl Fn(&StudyRow) -> f64,
    ) -> f64 {
        let v: Vec<f64> = self
            .rows
            .iter()
            .chain(self.baselines.iter())
            .filter(|r| r.algorithm == algorithm && r.kind == kind)
            .map(&f)
            .collect();
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    }

    /// Renders Fig. 11a (per-workload speedups) and 11b (geomeans).
    pub fn render_fig11(&self) -> String {
        let mut t = Table::new(
            std::iter::once("workload".to_string())
                .chain(self.kinds.iter().map(|k| k.name().to_string()))
                .collect(),
        );
        let mut by_label: HashMap<&str, Vec<&StudyRow>> = HashMap::new();
        for r in &self.rows {
            by_label.entry(&r.label).or_default().push(r);
        }
        for b in &self.baselines {
            let mut cells = vec![b.label.clone()];
            if let Some(rs) = by_label.get(b.label.as_str()) {
                for k in &self.kinds {
                    let cell = rs
                        .iter()
                        .find(|r| r.kind == *k)
                        .map(|r| format!("{:.2}x", r.speedup))
                        .unwrap_or_default();
                    cells.push(cell);
                }
            }
            t.row(cells);
        }

        let mut summary = Table::new(
            std::iter::once("algorithm".to_string())
                .chain(self.kinds.iter().map(|k| k.name().to_string()))
                .collect(),
        );
        for algo in Algorithm::ALL {
            let mut cells = vec![algo.name().to_string()];
            for &k in &self.kinds {
                cells.push(format!("{:.2}x", self.geomean_speedup(algo, k)));
            }
            summary.row(cells);
        }
        format!(
            "Fig. 11a — speedup over the no-prefetch baseline\n{}\n\
             Fig. 11b — geomean speedup per algorithm\n{}\n\
             paper: DROPLET best for CC (+102%), PR (+30%), BC (+19%), SSSP (+32%);\n\
             streamMPP1 best for BFS (+36%) and the road dataset.\n{}",
            t.render(),
            summary.render(),
            self.footer()
        )
    }

    /// Renders Fig. 12 (L2 hit rates per algorithm × configuration).
    pub fn render_fig12(&self) -> String {
        let mut t = Table::new(
            std::iter::once("algorithm".to_string())
                .chain(std::iter::once("baseline".to_string()))
                .chain(self.kinds.iter().map(|k| k.name().to_string()))
                .collect(),
        );
        for algo in Algorithm::ALL {
            let mut cells = vec![algo.name().to_string()];
            cells.push(pct(
                self.mean_metric(algo, PrefetcherKind::None, |r| r.l2_hit_rate)
            ));
            for &k in &self.kinds {
                cells.push(pct(self.mean_metric(algo, k, |r| r.l2_hit_rate)));
            }
            t.row(cells);
        }
        format!(
            "Fig. 12 — L2 cache hit rate\n{}\n\
             paper: DROPLET lifts the under-utilized L2 to 62/76/14/38/50%\n\
             for CC/PR/BC/BFS/SSSP.\n{}",
            t.render(),
            self.footer()
        )
    }

    /// Renders Fig. 13 (off-chip demand MPKI by data type).
    pub fn render_fig13(&self) -> String {
        let mut t = Table::new(vec![
            "algorithm".into(),
            "config".into(),
            "structure MPKI".into(),
            "property MPKI".into(),
            "intermediate MPKI".into(),
        ]);
        for algo in Algorithm::ALL {
            for kind in std::iter::once(PrefetcherKind::None).chain(self.kinds.iter().copied()) {
                t.row(vec![
                    algo.name().to_string(),
                    kind.name().to_string(),
                    format!(
                        "{:.2}",
                        self.mean_metric(algo, kind, |r| r.llc_mpki_by_type[0])
                    ),
                    format!(
                        "{:.2}",
                        self.mean_metric(algo, kind, |r| r.llc_mpki_by_type[1])
                    ),
                    format!(
                        "{:.2}",
                        self.mean_metric(algo, kind, |r| r.llc_mpki_by_type[2])
                    ),
                ]);
            }
        }
        format!(
            "Fig. 13 — off-chip demand MPKI by data type\n{}\n\
             paper: stream cuts structure MPKI; the MPP cuts property MPKI;\n\
             DROPLET's structure-only streamer cuts both further.\n{}",
            t.render(),
            self.footer()
        )
    }

    /// Renders Fig. 14 (prefetch accuracy by data type).
    pub fn render_fig14(&self) -> String {
        let mut t = Table::new(vec![
            "algorithm".into(),
            "config".into(),
            "structure accuracy".into(),
            "property accuracy".into(),
        ]);
        for algo in Algorithm::ALL {
            for &kind in &self.kinds {
                t.row(vec![
                    algo.name().to_string(),
                    kind.name().to_string(),
                    pct(self.mean_metric(algo, kind, |r| {
                        r.accuracy_by_type[DataType::Structure.index()]
                    })),
                    pct(self.mean_metric(algo, kind, |r| {
                        r.accuracy_by_type[DataType::Property.index()]
                    })),
                ]);
            }
        }
        format!(
            "Fig. 14 — prefetch accuracy\n{}\n\
             paper: DROPLET structure accuracy 100/95/53/66/64% and property\n\
             accuracy 94/95/46/47/70% for CC/PR/BC/BFS/SSSP; sequential-order\n\
             algorithms (CC, PR) are the most accurate.\n{}",
            t.render(),
            self.footer()
        )
    }

    /// Renders Fig. 15 (bandwidth overhead in BPKI).
    pub fn render_fig15(&self) -> String {
        let mut t = Table::new(vec![
            "algorithm".into(),
            "config".into(),
            "BPKI".into(),
            "overhead vs baseline".into(),
        ]);
        for algo in Algorithm::ALL {
            let base = self.mean_metric(algo, PrefetcherKind::None, |r| r.bpki);
            t.row(vec![
                algo.name().to_string(),
                "baseline".into(),
                format!("{base:.2}"),
                "-".into(),
            ]);
            for &kind in &self.kinds {
                let b = self.mean_metric(algo, kind, |r| r.bpki);
                let overhead = if base > 0.0 { b / base - 1.0 } else { 0.0 };
                t.row(vec![
                    algo.name().to_string(),
                    kind.name().to_string(),
                    format!("{b:.2}"),
                    pct(overhead),
                ]);
            }
        }
        format!(
            "Fig. 15 — extra bandwidth consumption (BPKI)\n{}\n\
             paper: DROPLET costs +6.5/7/11.3/19.9/15.1% extra bandwidth for\n\
             CC/PR/BC/BFS/SSSP; CC and PR are cheapest thanks to accuracy.\n{}",
            t.render(),
            self.footer()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::run_workload;
    use droplet_graph::Dataset;

    /// A one-cell study so tests stay fast.
    fn mini_study(kinds: &[PrefetcherKind]) -> PrefetchStudy {
        let ctx = ExperimentCtx::tiny();
        let spec = WorkloadSpec {
            algorithm: Algorithm::Pr,
            dataset: Dataset::Kron,
            scale: ctx.scale,
        };
        let bundle = ctx.trace(&spec);
        let base = run_workload(&bundle, &ctx.base, ctx.warmup);
        let base_cycles = base.core.cycles;
        let baselines = vec![row_from(&base, &spec, PrefetcherKind::None, base_cycles)];
        let rows = kinds
            .iter()
            .map(|&k| {
                let r = run_workload(&bundle, &ctx.base.with_prefetcher(k), ctx.warmup);
                row_from(&r, &spec, k, base_cycles)
            })
            .collect();
        PrefetchStudy {
            baselines,
            rows,
            kinds: kinds.to_vec(),
            manifest: String::new(),
        }
    }

    #[test]
    fn droplet_beats_baseline_and_renders() {
        let study = mini_study(&[PrefetcherKind::Stream, PrefetcherKind::Droplet]);
        let droplet = study.geomean_speedup(Algorithm::Pr, PrefetcherKind::Droplet);
        assert!(droplet > 1.0, "DROPLET speedup {droplet}");
        for text in [
            study.render_fig11(),
            study.render_fig12(),
            study.render_fig13(),
            study.render_fig14(),
            study.render_fig15(),
        ] {
            assert!(text.contains("Fig. 1"), "{text}");
        }
    }

    #[test]
    fn droplet_structure_accuracy_is_high_on_pr() {
        let study = mini_study(&[PrefetcherKind::Droplet]);
        let acc = study.mean_metric(Algorithm::Pr, PrefetcherKind::Droplet, |r| {
            r.accuracy_by_type[DataType::Structure.index()]
        });
        assert!(acc > 0.7, "structure accuracy {acc}");
    }

    #[test]
    fn prefetching_adds_bandwidth() {
        let study = mini_study(&[PrefetcherKind::Droplet]);
        let base = study.mean_metric(Algorithm::Pr, PrefetcherKind::None, |r| r.bpki);
        let with = study.mean_metric(Algorithm::Pr, PrefetcherKind::Droplet, |r| r.bpki);
        assert!(with >= base, "bpki {with} vs {base}");
    }
}
