//! Characterization experiments (paper Section IV): cycle stacks, the
//! instruction-window sweep, dependency-chain analysis, and the per-type
//! memory-hierarchy usage breakdown.

use crate::datasets::WorkloadSpec;
use crate::experiments::ExperimentCtx;
use crate::report::{pct, Table};
use crate::system::run_workload;
use droplet_cpu::{analyze_chains, CycleStack};
use droplet_gap::Algorithm;
use droplet_graph::Dataset;
use droplet_trace::DataType;

/// Fig. 1 — the cycle stack of PageRank on the orkut dataset.
#[derive(Debug, Clone)]
pub struct Fig01 {
    /// The measured cycle stack.
    pub stack: CycleStack,
}

impl Fig01 {
    /// Renders the figure row with the paper's expectation annotated.
    pub fn render(&self) -> String {
        format!(
            "Fig. 1 — cycle stack, PR on orkut\n\
             measured: {}\n\
             paper:    DRAM-bound ~45% of cycles, fully-busy ~15%\n",
            self.stack
        )
    }
}

/// Runs the Fig. 1 experiment.
pub fn fig01_cycle_stack(ctx: &ExperimentCtx) -> Fig01 {
    let spec = WorkloadSpec {
        algorithm: Algorithm::Pr,
        dataset: Dataset::Orkut,
        scale: ctx.scale,
    };
    let bundle = ctx.trace(&spec);
    let r = run_workload(&bundle, &ctx.base, ctx.warmup);
    Fig01 {
        stack: r.core.cycle_stack,
    }
}

/// One row of the Fig. 3 instruction-window sweep.
#[derive(Debug, Clone)]
pub struct Fig03Row {
    /// Workload label ("PR-orkut").
    pub label: String,
    /// DRAM bandwidth utilization, baseline window.
    pub bw_base: f64,
    /// DRAM bandwidth utilization, 4× window.
    pub bw_big: f64,
    /// Speedup of the 4× window over baseline.
    pub speedup: f64,
    /// MLP at the baseline window.
    pub mlp_base: f64,
    /// MLP at the 4× window.
    pub mlp_big: f64,
}

/// Fig. 3 — effect of a 4× larger instruction window.
#[derive(Debug, Clone)]
pub struct Fig03 {
    /// Per-workload rows.
    pub rows: Vec<Fig03Row>,
}

impl Fig03 {
    /// Mean bandwidth-utilization increase (paper: +2.7 % on average).
    pub fn mean_bw_increase(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().map(|r| r.bw_big - r.bw_base).sum::<f64>() / self.rows.len() as f64
    }

    /// Mean speedup − 1 (paper: +1.44 % on average).
    pub fn mean_speedup_gain(&self) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().map(|r| r.speedup - 1.0).sum::<f64>() / self.rows.len() as f64
    }

    /// Renders the figure table.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "workload".into(),
            "BW util (1x)".into(),
            "BW util (4x)".into(),
            "MLP (1x)".into(),
            "MLP (4x)".into(),
            "speedup".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                r.label.clone(),
                pct(r.bw_base),
                pct(r.bw_big),
                format!("{:.2}", r.mlp_base),
                format!("{:.2}", r.mlp_big),
                format!("{:.3}x", r.speedup),
            ]);
        }
        format!(
            "Fig. 3 — 4x instruction window\n{}\nmean BW increase {:.2} pp (paper: +2.7%), \
             mean speedup {:.2}% (paper: +1.44%)\n",
            t.render(),
            100.0 * self.mean_bw_increase(),
            100.0 * self.mean_speedup_gain(),
        )
    }
}

/// Runs the Fig. 3 experiment over the full workload matrix; the
/// independent per-workload cells fan out over `ctx.pool`.
pub fn fig03_rob_sweep(ctx: &ExperimentCtx) -> Fig03 {
    let big_cfg = ctx.base.clone().with_window_scale(4);
    let rows = ctx.pool.run(
        WorkloadSpec::matrix(ctx.scale)
            .into_iter()
            .map(|spec| {
                let big_cfg = &big_cfg;
                move || {
                    let bundle = ctx.trace(&spec);
                    let base = run_workload(&bundle, &ctx.base, ctx.warmup);
                    let big = run_workload(&bundle, big_cfg, ctx.warmup);
                    Fig03Row {
                        label: spec.label(),
                        bw_base: base.bandwidth_utilization(),
                        bw_big: big.bandwidth_utilization(),
                        speedup: base.core.cycles as f64 / big.core.cycles.max(1) as f64,
                        mlp_base: base.core.mlp.avg_outstanding,
                        mlp_big: big.core.mlp.avg_outstanding,
                    }
                }
            })
            .collect(),
    );
    Fig03 { rows }
}

/// One row of the Fig. 5/6 dependency-chain analysis.
#[derive(Debug, Clone)]
pub struct ChainRow {
    /// Workload label.
    pub label: String,
    /// Fraction of loads in chains (paper avg: 43.2 %).
    pub chained: f64,
    /// Mean chain length in loads (paper avg: 2.5).
    pub mean_len: f64,
    /// Producer fraction by data type (Fig. 6).
    pub producer: [f64; 3],
    /// Consumer fraction by data type (Fig. 6).
    pub consumer: [f64; 3],
}

/// Figs. 5 & 6 — load-load dependency chains and role breakdown.
#[derive(Debug, Clone)]
pub struct Fig0506 {
    /// Per-workload rows.
    pub rows: Vec<ChainRow>,
}

impl Fig0506 {
    /// Mean over rows of a row-extracted metric.
    pub fn mean(&self, f: impl Fn(&ChainRow) -> f64) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows.iter().map(f).sum::<f64>() / self.rows.len() as f64
    }

    /// Renders both figure tables.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "workload".into(),
            "loads in chains".into(),
            "mean chain len".into(),
            "prod S".into(),
            "prod P".into(),
            "prod I".into(),
            "cons S".into(),
            "cons P".into(),
            "cons I".into(),
        ]);
        for r in &self.rows {
            let mut cells = vec![
                r.label.clone(),
                pct(r.chained),
                format!("{:.2}", r.mean_len),
            ];
            for v in r.producer {
                cells.push(pct(v));
            }
            for v in r.consumer {
                cells.push(pct(v));
            }
            t.row(cells);
        }
        let si = DataType::Structure.index();
        let pi = DataType::Property.index();
        format!(
            "Figs. 5 & 6 — load-load dependency chains\n{}\n\
             mean chained {:.1}% (paper: 43.2%), mean chain length {:.2} (paper: 2.5)\n\
             structure as producer {:.1}% (paper: 41.4%), as consumer {:.1}% (paper: 6%)\n\
             property as consumer {:.1}% (paper: 53.6%), as producer {:.1}% (paper: 5.9%)\n",
            t.render(),
            100.0 * self.mean(|r| r.chained),
            self.mean(|r| r.mean_len),
            100.0 * self.mean(|r| r.producer[si]),
            100.0 * self.mean(|r| r.consumer[si]),
            100.0 * self.mean(|r| r.consumer[pi]),
            100.0 * self.mean(|r| r.producer[pi]),
        )
    }
}

/// Runs the Fig. 5/6 analysis (trace-level; no timing model needed); the
/// per-workload analyses fan out over `ctx.pool`.
pub fn fig05_06_chains(ctx: &ExperimentCtx) -> Fig0506 {
    let rob = ctx.base.core.rob;
    let rows = ctx.pool.run(
        WorkloadSpec::matrix(ctx.scale)
            .into_iter()
            .map(|spec| {
                move || {
                    let bundle = ctx.trace(&spec);
                    let report = analyze_chains(&bundle.ops, rob);
                    ChainRow {
                        label: spec.label(),
                        chained: report.chained_fraction(),
                        mean_len: report.mean_chain_len(),
                        producer: [
                            report.producer_fraction(DataType::Structure),
                            report.producer_fraction(DataType::Property),
                            report.producer_fraction(DataType::Intermediate),
                        ],
                        consumer: [
                            report.consumer_fraction(DataType::Structure),
                            report.consumer_fraction(DataType::Property),
                            report.consumer_fraction(DataType::Intermediate),
                        ],
                    }
                }
            })
            .collect(),
    );
    Fig0506 { rows }
}

/// One row of the Fig. 7 hierarchy-usage breakdown.
#[derive(Debug, Clone)]
pub struct Fig07Row {
    /// Workload label.
    pub label: String,
    /// Service fractions [L1, L2, L3, DRAM] per data type index.
    pub breakdown: [[f64; 4]; 3],
}

/// Fig. 7 — memory-hierarchy usage by application data type.
#[derive(Debug, Clone)]
pub struct Fig07 {
    /// Per-workload rows.
    pub rows: Vec<Fig07Row>,
}

impl Fig07 {
    /// Mean service fraction of `dtype` at hierarchy `level` (0..4).
    pub fn mean_fraction(&self, dtype: DataType, level: usize) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows
            .iter()
            .map(|r| r.breakdown[dtype.index()][level])
            .sum::<f64>()
            / self.rows.len() as f64
    }

    /// Renders the figure table.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "workload".into(),
            "type".into(),
            "L1".into(),
            "L2".into(),
            "L3".into(),
            "DRAM".into(),
        ]);
        for r in &self.rows {
            for dt in DataType::ALL {
                let b = r.breakdown[dt.index()];
                t.row(vec![
                    r.label.clone(),
                    dt.to_string(),
                    pct(b[0]),
                    pct(b[1]),
                    pct(b[2]),
                    pct(b[3]),
                ]);
            }
        }
        format!(
            "Fig. 7 — memory hierarchy usage by data type\n{}\n\
             paper: structure is serviced by L1 + DRAM; property by L1 + LLC + DRAM;\n\
             intermediate mostly on-chip; the private L2 services almost nothing.\n",
            t.render()
        )
    }
}

/// Runs the Fig. 7 experiment (baseline configuration); the per-workload
/// cells fan out over `ctx.pool`.
pub fn fig07_hierarchy_usage(ctx: &ExperimentCtx) -> Fig07 {
    let rows = ctx.pool.run(
        WorkloadSpec::matrix(ctx.scale)
            .into_iter()
            .map(|spec| {
                move || {
                    let bundle = ctx.trace(&spec);
                    let r = run_workload(&bundle, &ctx.base, ctx.warmup);
                    let mut breakdown = [[0.0; 4]; 3];
                    for dt in DataType::ALL {
                        breakdown[dt.index()] = r.service_breakdown(dt);
                    }
                    Fig07Row {
                        label: spec.label(),
                        breakdown,
                    }
                }
            })
            .collect(),
    );
    Fig07 { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig01_is_dram_heavy() {
        let f = fig01_cycle_stack(&ExperimentCtx::tiny());
        assert!(
            f.stack.dram_fraction() > 0.25,
            "PR-orkut must be DRAM-bound: {}",
            f.stack
        );
        assert!(f.render().contains("Fig. 1"));
    }

    #[test]
    fn fig05_chains_match_paper_shape() {
        // A couple of representative cells, not the whole matrix, for speed.
        let ctx = ExperimentCtx::tiny();
        let spec = WorkloadSpec {
            algorithm: Algorithm::Pr,
            dataset: Dataset::Kron,
            scale: ctx.scale,
        };
        let bundle = spec.build_trace_with_budget(ctx.budget);
        let report = analyze_chains(&bundle.ops, 128);
        // Property is overwhelmingly the consumer; structure the producer.
        assert!(report.consumer_fraction(DataType::Property) > 0.2);
        assert!(report.producer_fraction(DataType::Structure) > 0.1);
        assert!(report.producer_fraction(DataType::Property) < 0.1);
        assert!(report.chained_fraction() > 0.2);
        assert!(report.mean_chain_len() >= 2.0);
    }

    #[test]
    fn fig07_structure_skips_l2() {
        let ctx = ExperimentCtx::tiny();
        let spec = WorkloadSpec {
            algorithm: Algorithm::Pr,
            dataset: Dataset::Urand,
            scale: ctx.scale,
        };
        let bundle = spec.build_trace_with_budget(ctx.budget);
        let r = run_workload(&bundle, &ctx.base, ctx.warmup);
        let s = r.service_breakdown(DataType::Structure);
        // Structure: dominated by L1 (spatial locality within lines) and
        // the far levels; the private L2 contributes the least.
        assert!(s[0] > 0.5, "L1 should dominate structure: {s:?}");
        assert!(s[1] < 0.2, "L2 should service little structure: {s:?}");
    }
}
