//! Reuse-distance analysis behind the paper's Observation #6 and the
//! Table IV prefetch-design decisions: structure cachelines have the
//! largest reuse distances (beyond even the LLC), property reuse exceeds
//! the L2 stack depth but often fits the LLC, intermediate data is
//! cache-resident.

use crate::datasets::WorkloadSpec;
use crate::experiments::ExperimentCtx;
use crate::report::{pct, Table};
use droplet_cache::{FillInfo, ReuseProfiler, SetAssocCache};
use droplet_trace::DataType;

/// Reuse-distance summary for one workload.
#[derive(Debug, Clone)]
pub struct ReuseRow {
    /// Workload label.
    pub label: String,
    /// Per data type: fraction of reuses capturable by an L1/L2/L3-sized
    /// fully associative cache, indexed `[dtype][level]`.
    pub capturable: [[f64; 3]; 3],
    /// Per data type: mean log2 reuse distance (lines).
    pub mean_log2: [f64; 3],
}

/// The reuse-distance table (supporting Observation #6 / Table IV).
#[derive(Debug, Clone)]
pub struct ReuseTable {
    /// Per-workload rows.
    pub rows: Vec<ReuseRow>,
    /// Cache sizes used, in lines (L1, L2, L3).
    pub cache_lines: [u64; 3],
}

impl ReuseTable {
    /// Mean capturable fraction of `dtype` at cache level `level` (0..3).
    pub fn mean_capturable(&self, dtype: DataType, level: usize) -> f64 {
        if self.rows.is_empty() {
            return 0.0;
        }
        self.rows
            .iter()
            .map(|r| r.capturable[dtype.index()][level])
            .sum::<f64>()
            / self.rows.len() as f64
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "workload".into(),
            "type".into(),
            format!("<= L1 ({} lines)", self.cache_lines[0]),
            format!("<= L2 ({} lines)", self.cache_lines[1]),
            format!("<= L3 ({} lines)", self.cache_lines[2]),
            "mean log2 dist".into(),
        ]);
        for r in &self.rows {
            for dt in DataType::ALL {
                t.row(vec![
                    r.label.clone(),
                    dt.to_string(),
                    pct(r.capturable[dt.index()][0]),
                    pct(r.capturable[dt.index()][1]),
                    pct(r.capturable[dt.index()][2]),
                    format!("{:.1}", r.mean_log2[dt.index()]),
                ]);
            }
        }
        format!(
            "Observation #6 — reuse distances by data type (Olken stack distances)\n{}\n\
             paper: structure reuse exceeds the LLC (serviced by L1 + DRAM);\n\
             property reuse exceeds the L2 stack depth but reaches the LLC;\n\
             intermediate data stays cache-resident.\n",
            t.render()
        )
    }
}

/// Profiles the reuse distances of the *L1-miss* stream: the paper frames
/// Observation #6 as "a cacheline missed in L1 is one that was referenced
/// in the distant past", so short same-line reuse (which the L1 absorbs)
/// must be filtered out before measuring stack distances.
pub(crate) fn l1_filtered_profile(
    ops: &[droplet_trace::MemOp],
    l1: &droplet_cache::CacheConfig,
) -> ReuseProfiler {
    let mut filter = SetAssocCache::new(l1.clone());
    let mut profiler = ReuseProfiler::new();
    for (i, op) in ops.iter().enumerate() {
        let line = op.addr().line_index();
        if filter
            .touch(line, i as u64, op.dtype(), !op.is_load())
            .is_none()
        {
            profiler.access(line, op.dtype());
            filter.fill(line, FillInfo::demand(op.dtype(), i as u64));
        }
    }
    profiler
}

/// Computes reuse-distance profiles over the workload matrix.
pub fn tab_reuse_distances(ctx: &ExperimentCtx) -> ReuseTable {
    let cache_lines = [
        ctx.base.l1.num_lines(),
        ctx.base.l2.as_ref().map_or(0, |c| c.num_lines()),
        ctx.base.l3.num_lines(),
    ];
    let mut rows = Vec::new();
    for spec in WorkloadSpec::matrix(ctx.scale) {
        let bundle = spec.build_trace_with_budget(ctx.budget);
        let profiler = l1_filtered_profile(&bundle.ops, &ctx.base.l1);
        let mut capturable = [[0.0; 3]; 3];
        let mut mean_log2 = [0.0; 3];
        for dt in DataType::ALL {
            let h = profiler.histogram(dt);
            for (li, &lines) in cache_lines.iter().enumerate() {
                capturable[dt.index()][li] = h.capturable_by(lines.max(1));
            }
            mean_log2[dt.index()] = h.mean_log2_distance();
        }
        rows.push(ReuseRow {
            label: spec.label(),
            capturable,
            mean_log2,
        });
    }
    ReuseTable { rows, cache_lines }
}

#[cfg(test)]
mod tests {
    use super::*;
    use droplet_gap::Algorithm;
    use droplet_graph::Dataset;

    #[test]
    fn structure_reuse_exceeds_property_reuse() {
        let ctx = ExperimentCtx::tiny();
        let spec = WorkloadSpec {
            algorithm: Algorithm::Pr,
            dataset: Dataset::Kron,
            scale: ctx.scale,
        };
        let bundle = spec.build_trace_with_budget(ctx.budget);
        let profiler = l1_filtered_profile(&bundle.ops, &ctx.base.l1);
        let s = profiler.histogram(DataType::Structure);
        let p = profiler.histogram(DataType::Property);
        let i = profiler.histogram(DataType::Intermediate);
        // Paper's heterogeneity: post-L1-miss structure reuse is the most
        // distant; property exceeds an L2-sized stack; intermediate is the
        // most cache-friendly of the three.
        assert!(
            s.mean_log2_distance() > p.mean_log2_distance(),
            "structure {} vs property {}",
            s.mean_log2_distance(),
            p.mean_log2_distance()
        );
        let l2_lines = 128u64;
        assert!(
            p.capturable_by(l2_lines) < 0.5,
            "property reuse should exceed the L2 stack depth: {}",
            p.capturable_by(l2_lines)
        );
        // PR's only intermediate array is the offsets stream, whose
        // post-L1-filter reuse is one full pass — just confirm the
        // histogram exists; the L1 absorbs 7/8 of its accesses (Fig. 7).
        assert!(i.reuses() + i.cold() > 0);
    }

    #[test]
    fn table_renders() {
        let table = ReuseTable {
            rows: vec![ReuseRow {
                label: "PR-kron".into(),
                capturable: [[0.1; 3]; 3],
                mean_log2: [10.0, 7.0, 2.0],
            }],
            cache_lines: [16, 128, 256],
        };
        let text = table.render();
        assert!(text.contains("Observation #6"));
        assert!(text.contains("PR-kron"));
        assert!((table.mean_capturable(DataType::Structure, 0) - 0.1).abs() < 1e-12);
    }
}
