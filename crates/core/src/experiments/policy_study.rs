//! The replacement-policy laboratory: every workload of the matrix run
//! with each RRIP-family policy swapped into the LLC and into the private
//! L2, against the all-LRU baseline — the study the `ReplacementPolicy`
//! seam exists for.
//!
//! The paper's Observation #6 predicts the outcome shape: graph-workload
//! reuse distances are bimodal per data type, so scan-resistant insertion
//! (SRRIP/BRRIP/DRRIP) and dead-block prediction (SHiP) mostly help where
//! a data type thrashes the level without fitting it. The driver therefore
//! pairs the timing table with a reuse-distance *explainer* built from
//! [`droplet_cache::ReuseReport`]: per workload and data type, how much of
//! the L1-miss reuse the L2 and the LLC could capture, and which type is
//! thrashing — the mechanism behind each win or non-win in the table.

use crate::datasets::WorkloadSpec;
use crate::experiments::reuse::l1_filtered_profile;
use crate::experiments::ExperimentCtx;
use crate::fork::{run_sweep, SweepCell};
use crate::report::{geomean, kv_footer, pct, Table};
use crate::system::RunResult;
use droplet_cache::{ReplacementPolicy, ReuseReport};
use droplet_trace::DataType;
use std::sync::Arc;

/// The non-LRU policies the laboratory evaluates, in table order.
pub const STUDY_POLICIES: [ReplacementPolicy; 4] = [
    ReplacementPolicy::Srrip,
    ReplacementPolicy::Brrip,
    ReplacementPolicy::Drrip,
    ReplacementPolicy::Ship,
];

/// Which level the policy under test was swapped into (the other levels
/// stay LRU).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyLevel {
    /// The private L2.
    L2,
    /// The shared LLC.
    Llc,
}

impl PolicyLevel {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyLevel::L2 => "L2",
            PolicyLevel::Llc => "LLC",
        }
    }
}

/// Metrics of one (workload, policy, level) run.
#[derive(Debug, Clone)]
pub struct PolicyStudyRow {
    /// Workload label ("PR-kron").
    pub label: String,
    /// The policy under test (LRU for baseline rows).
    pub policy: ReplacementPolicy,
    /// The level it was swapped into.
    pub level: PolicyLevel,
    /// Cycles in the measurement window.
    pub cycles: u64,
    /// Speedup over the all-LRU baseline of the same workload.
    pub speedup: f64,
    /// LLC demand MPKI (total over data types).
    pub llc_mpki: f64,
    /// L2 demand hit rate.
    pub l2_hit_rate: f64,
    /// Bus accesses per kilo-instruction.
    pub bpki: f64,
}

/// The policy × workload × level study, with its reuse-distance explainer.
#[derive(Debug, Clone)]
pub struct PolicyStudy {
    /// All-LRU baseline rows, one per workload (speedup 1.0 by definition).
    pub baselines: Vec<PolicyStudyRow>,
    /// One row per (workload, policy, level).
    pub rows: Vec<PolicyStudyRow>,
    /// Policies evaluated, in column order.
    pub policies: Vec<ReplacementPolicy>,
    /// Per-workload reuse reports over the L1-miss stream, sized to the
    /// study hierarchy's (L2 lines, LLC lines).
    pub reuse: Vec<(String, ReuseReport)>,
    /// One-line reproducibility manifest; wall time makes it
    /// non-deterministic — compare rows, not this.
    pub manifest: String,
}

fn row_from(
    result: &RunResult,
    label: &str,
    policy: ReplacementPolicy,
    level: PolicyLevel,
    base_cycles: u64,
) -> PolicyStudyRow {
    PolicyStudyRow {
        label: label.to_string(),
        policy,
        level,
        cycles: result.core.cycles,
        speedup: base_cycles as f64 / result.core.cycles.max(1) as f64,
        llc_mpki: result.llc_mpki(),
        l2_hit_rate: result.l2_hit_rate(),
        bpki: result.bpki(),
    }
}

/// Runs the laboratory over explicit `specs` (the unit tests use a single
/// workload; [`run_policy_study`] passes the full matrix).
///
/// Per workload the sweep holds 1 + 2·|policies| cells: the all-LRU
/// baseline, each policy in the LLC, each policy in the L2. Every cell
/// changes `warmup_key` (the policy is part of the hierarchy), so the fork
/// runner only shares warm-ups within identical hierarchies — correctness
/// over speed, enforced by `mixed_policy_sweep_forks_safely`.
pub fn run_policy_study_on(
    ctx: &ExperimentCtx,
    specs: &[WorkloadSpec],
    policies: &[ReplacementPolicy],
) -> PolicyStudy {
    let wall = std::time::Instant::now();

    // Warm the shared trace cache in parallel before the sweep fans out.
    ctx.pool.run(
        specs
            .iter()
            .map(|spec| {
                move || {
                    ctx.trace(spec);
                }
            })
            .collect(),
    );

    let mut cells: Vec<SweepCell> = Vec::new();
    for spec in specs {
        let bundle = ctx.trace(spec);
        cells.push(SweepCell {
            bundle: Arc::clone(&bundle),
            cfg: ctx.base.clone(),
        });
        for &p in policies {
            cells.push(SweepCell {
                bundle: Arc::clone(&bundle),
                cfg: ctx.base.clone().with_l3_policy(p),
            });
        }
        for &p in policies {
            cells.push(SweepCell {
                bundle: Arc::clone(&bundle),
                cfg: ctx.base.clone().with_l2_policy(p),
            });
        }
    }
    let results = run_sweep(&ctx.pool, &cells, ctx.warmup, ctx.fork_sweeps);

    let mut baselines = Vec::new();
    let mut rows = Vec::new();
    let stride = 1 + 2 * policies.len();
    for (spec, group) in specs.iter().zip(results.chunks(stride)) {
        let label = spec.label();
        let base_cycles = group[0].core.cycles;
        baselines.push(row_from(
            &group[0],
            &label,
            ReplacementPolicy::Lru,
            PolicyLevel::Llc,
            base_cycles,
        ));
        let (llc, l2) = group[1..].split_at(policies.len());
        for (r, &p) in llc.iter().zip(policies) {
            rows.push(row_from(r, &label, p, PolicyLevel::Llc, base_cycles));
        }
        for (r, &p) in l2.iter().zip(policies) {
            rows.push(row_from(r, &label, p, PolicyLevel::L2, base_cycles));
        }
    }

    // The explainer: reuse distances of the L1-miss stream, bucketed
    // against the very sizes the policies were swapped into.
    let l2_lines = ctx.base.l2.as_ref().map_or(1, |c| c.num_lines());
    let llc_lines = ctx.base.l3.num_lines();
    let reuse = specs
        .iter()
        .map(|spec| {
            let bundle = ctx.trace(spec);
            let profiler = l1_filtered_profile(&bundle.ops, &ctx.base.l1);
            (spec.label(), profiler.report(l2_lines, llc_lines))
        })
        .collect();

    let manifest = kv_footer(
        "policy study manifest",
        &[
            ("scale", format!("{:?}", ctx.scale)),
            ("budget", ctx.budget.to_string()),
            ("warmup", ctx.warmup.to_string()),
            ("threads", ctx.pool.threads().to_string()),
            ("workloads", specs.len().to_string()),
            ("policies", policies.len().to_string()),
            ("cells", cells.len().to_string()),
            ("forked", ctx.fork_sweeps.to_string()),
            (
                "wall_ms",
                format!("{:.0}", wall.elapsed().as_secs_f64() * 1000.0),
            ),
        ],
    );
    PolicyStudy {
        baselines,
        rows,
        policies: policies.to_vec(),
        reuse,
        manifest,
    }
}

/// Runs the laboratory over the full workload matrix of `ctx`.
pub fn run_policy_study(ctx: &ExperimentCtx, policies: &[ReplacementPolicy]) -> PolicyStudy {
    run_policy_study_on(ctx, &WorkloadSpec::matrix(ctx.scale), policies)
}

impl PolicyStudy {
    fn footer(&self) -> String {
        if self.manifest.is_empty() {
            String::new()
        } else {
            format!("{}\n", self.manifest)
        }
    }

    /// Geomean speedup of (policy, level) across all workloads.
    pub fn geomean_speedup(&self, policy: ReplacementPolicy, level: PolicyLevel) -> f64 {
        let v: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.policy == policy && r.level == level)
            .map(|r| r.speedup)
            .collect();
        geomean(&v)
    }

    /// The (policy, level) column order: all LLC swaps, then all L2 swaps.
    fn columns(&self) -> Vec<(ReplacementPolicy, PolicyLevel)> {
        let mut cols: Vec<(ReplacementPolicy, PolicyLevel)> = self
            .policies
            .iter()
            .map(|&p| (p, PolicyLevel::Llc))
            .collect();
        cols.extend(self.policies.iter().map(|&p| (p, PolicyLevel::L2)));
        cols
    }

    /// Renders the policy × workload × level speedup table with a geomean
    /// summary row.
    pub fn render(&self) -> String {
        let cols = self.columns();
        let mut t = Table::new(
            std::iter::once("workload".to_string())
                .chain(cols.iter().map(|(p, l)| format!("{}:{}", l.name(), p)))
                .collect(),
        );
        for b in &self.baselines {
            let mut cells = vec![b.label.clone()];
            for &(p, l) in &cols {
                let cell = self
                    .rows
                    .iter()
                    .find(|r| r.label == b.label && r.policy == p && r.level == l)
                    .map(|r| format!("{:.3}x", r.speedup))
                    .unwrap_or_default();
                cells.push(cell);
            }
            t.row(cells);
        }
        let mut summary = vec!["geomean".to_string()];
        for &(p, l) in &cols {
            summary.push(format!("{:.3}x", self.geomean_speedup(p, l)));
        }
        t.row(summary);
        format!(
            "Policy laboratory — speedup over the all-LRU baseline\n\
             (policy swapped into one level; all other levels stay LRU)\n{}\n{}",
            t.render(),
            self.footer()
        )
    }

    /// Renders the reuse-distance explainer: why each policy can (or
    /// cannot) win at each level, per workload and data type.
    pub fn render_reuse_explainer(&self) -> String {
        let mut t = Table::new(vec![
            "workload".into(),
            "type".into(),
            "cold".into(),
            "reuses".into(),
            "fits L2".into(),
            "fits LLC".into(),
            "LLC-only gain".into(),
            "thrashes LLC".into(),
        ]);
        for (label, report) in &self.reuse {
            let worst = report.most_thrashing();
            for dt in DataType::ALL {
                let row = report.row(dt);
                t.row(vec![
                    label.clone(),
                    format!("{dt}{}", if dt == worst { " *" } else { "" }),
                    row.cold.to_string(),
                    row.reuses.to_string(),
                    pct(row.capturable_small),
                    pct(row.capturable_large),
                    pct(row.large_cache_gain()),
                    pct(row.thrash_fraction()),
                ]);
            }
        }
        format!(
            "Reuse-distance explainer (L1-miss stream; * = most LLC-thrashing type)\n\
             scan-resistant insertion helps where \"thrashes LLC\" is high;\n\
             dead-block prediction (SHiP) additionally needs signature stability.\n{}",
            t.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use droplet_gap::Algorithm;
    use droplet_graph::Dataset;

    /// End-to-end on one workload: row shape, baseline identity, and the
    /// render paths. Tiny scale keeps this in unit-test budget.
    #[test]
    fn single_workload_study_has_coherent_shape() {
        let mut ctx = ExperimentCtx::tiny();
        ctx.budget = 60_000;
        ctx.warmup = 2_000;
        let specs = [WorkloadSpec {
            algorithm: Algorithm::Pr,
            dataset: Dataset::Kron,
            scale: ctx.scale,
        }];
        let study = run_policy_study_on(&ctx, &specs, &STUDY_POLICIES);
        assert_eq!(study.baselines.len(), 1);
        assert_eq!(study.rows.len(), 2 * STUDY_POLICIES.len());
        assert!((study.baselines[0].speedup - 1.0).abs() < 1e-12);
        for r in &study.rows {
            assert!(r.cycles > 0, "{}:{} ran", r.level.name(), r.policy);
            assert!(r.speedup > 0.0);
        }
        // Same policy, different level ⇒ independent runs (LLC swap and L2
        // swap are distinct hierarchies; identical cycles for all four
        // policies at both levels would mean the seam is not plumbed).
        let distinct: std::collections::HashSet<u64> =
            study.rows.iter().map(|r| r.cycles).collect();
        assert!(distinct.len() > 1, "policy swaps changed nothing");
        let text = study.render();
        assert!(text.contains("LLC:SRRIP") && text.contains("L2:SHiP"));
        assert!(text.contains("geomean"));
        let explain = study.render_reuse_explainer();
        assert!(explain.contains("PR-kron") && explain.contains("thrashes LLC"));
    }

    #[test]
    fn render_handles_hand_assembled_study() {
        let study = PolicyStudy {
            baselines: vec![PolicyStudyRow {
                label: "PR-kron".into(),
                policy: ReplacementPolicy::Lru,
                level: PolicyLevel::Llc,
                cycles: 1000,
                speedup: 1.0,
                llc_mpki: 10.0,
                l2_hit_rate: 0.5,
                bpki: 20.0,
            }],
            rows: vec![PolicyStudyRow {
                label: "PR-kron".into(),
                policy: ReplacementPolicy::Ship,
                level: PolicyLevel::Llc,
                cycles: 900,
                speedup: 1000.0 / 900.0,
                llc_mpki: 9.0,
                l2_hit_rate: 0.5,
                bpki: 19.0,
            }],
            policies: vec![ReplacementPolicy::Ship],
            reuse: Vec::new(),
            manifest: String::new(),
        };
        let text = study.render();
        assert!(text.contains("PR-kron"));
        assert!(text.contains("1.111x"));
        assert!(
            (study.geomean_speedup(ReplacementPolicy::Ship, PolicyLevel::Llc) - 1000.0 / 900.0)
                .abs()
                < 1e-12
        );
    }
}
