//! Ablation studies of DROPLET's design choices (DESIGN.md §9).
//!
//! - **Decoupling** — the paper's core architectural argument (Section V-A):
//!   physically decoupling the property prefetcher at the MC versus the
//!   monolithic L1 arrangement, plus the Section VII-B adaptive extension.
//! - **MPP sizing** — how VAB/PAB occupancy bounds and the MTLB size trade
//!   prefetch volume against pollution (Table V sizing).

use crate::config::PrefetcherKind;
use crate::datasets::WorkloadSpec;
use crate::experiments::ExperimentCtx;
use crate::fork::{run_sweep, SweepCell};
use crate::report::Table;
use droplet_gap::Algorithm;
use droplet_graph::Dataset;
use std::sync::Arc;

/// One row of the decoupling ablation.
#[derive(Debug, Clone)]
pub struct DecouplingRow {
    /// Workload label.
    pub label: String,
    /// Speedup over the no-prefetch baseline, per configuration
    /// (streamMPP1, monoDROPLETL1, DROPLET, DROPLET-adaptive).
    pub speedups: [f64; 4],
    /// The mode adaptive DROPLET locked into (`true` = stayed data-aware).
    pub adaptive_locked_data_aware: Option<bool>,
}

/// The decoupling/adaptivity ablation.
#[derive(Debug, Clone)]
pub struct DecouplingAblation {
    /// Per-workload rows.
    pub rows: Vec<DecouplingRow>,
}

/// Configurations of the decoupling ablation, in column order.
pub const DECOUPLING_KINDS: [PrefetcherKind; 4] = [
    PrefetcherKind::StreamMpp1,
    PrefetcherKind::MonoDropletL1,
    PrefetcherKind::Droplet,
    PrefetcherKind::AdaptiveDroplet,
];

impl DecouplingAblation {
    /// Renders the ablation table.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "workload".into(),
            "streamMPP1".into(),
            "monoDROPLETL1".into(),
            "DROPLET".into(),
            "DROPLET-adaptive".into(),
            "adaptive locked".into(),
        ]);
        for r in &self.rows {
            let mut cells = vec![r.label.clone()];
            for s in r.speedups {
                cells.push(format!("{s:.2}x"));
            }
            cells.push(match r.adaptive_locked_data_aware {
                Some(true) => "data-aware".into(),
                Some(false) => "conventional".into(),
                None => "probing".into(),
            });
            t.row(cells);
        }
        format!(
            "Ablation — decoupled vs monolithic placement, plus adaptivity\n{}\n\
             paper: DROPLET beats the monolithic L1 arrangement by 4-12.5%\n\
             (decoupling gains timeliness; L1 stays unpolluted); the adaptive\n\
             extension should track max(DROPLET, streamMPP1) per workload.\n",
            t.render()
        )
    }
}

/// Runs the decoupling ablation over every algorithm on two contrasting
/// datasets (kron: DROPLET's home turf; road: streamMPP1's). Every
/// (workload, configuration) cell fans out over `ctx.pool`.
pub fn ablation_decoupling(ctx: &ExperimentCtx) -> DecouplingAblation {
    let mut specs = Vec::new();
    for algorithm in Algorithm::ALL {
        for dataset in [Dataset::Kron, Dataset::Road] {
            specs.push(WorkloadSpec {
                algorithm,
                dataset,
                scale: ctx.scale,
            });
        }
    }
    ctx.pool.run(
        specs
            .iter()
            .map(|spec| {
                move || {
                    ctx.trace(spec);
                }
            })
            .collect(),
    );

    let kind_cfgs: Vec<_> = DECOUPLING_KINDS
        .iter()
        .map(|&k| ctx.base.with_prefetcher(k))
        .collect();
    let mut cells = Vec::new();
    for &spec in &specs {
        let bundle = ctx.trace(&spec);
        cells.push(SweepCell {
            bundle: Arc::clone(&bundle),
            cfg: ctx.base.clone(),
        });
        for cfg in &kind_cfgs {
            cells.push(SweepCell {
                bundle: Arc::clone(&bundle),
                cfg: cfg.clone(),
            });
        }
    }
    let results = run_sweep(&ctx.pool, &cells, ctx.warmup, ctx.fork_sweeps);

    let stride = 1 + DECOUPLING_KINDS.len();
    let rows = specs
        .iter()
        .zip(results.chunks(stride))
        .map(|(spec, group)| {
            let base_cycles = group[0].core.cycles;
            let mut speedups = [0.0; 4];
            let mut locked = None;
            for (i, (kind, r)) in DECOUPLING_KINDS.iter().zip(&group[1..]).enumerate() {
                speedups[i] = base_cycles as f64 / r.core.cycles.max(1) as f64;
                if *kind == PrefetcherKind::AdaptiveDroplet {
                    locked = r.sys.adaptive_locked_data_aware;
                }
            }
            DecouplingRow {
                label: spec.label(),
                speedups,
                adaptive_locked_data_aware: locked,
            }
        })
        .collect();
    DecouplingAblation { rows }
}

/// One row of the MPP sizing ablation.
#[derive(Debug, Clone)]
pub struct SizingRow {
    /// Workload label.
    pub label: String,
    /// VAB/PAB entries for this point.
    pub vab_pab: usize,
    /// MTLB entries for this point.
    pub mtlb: usize,
    /// Speedup over the no-prefetch baseline.
    pub speedup: f64,
    /// MPP buffer drops observed.
    pub buffer_drops: u64,
}

/// The MPP sizing ablation.
#[derive(Debug, Clone)]
pub struct SizingAblation {
    /// All swept points.
    pub rows: Vec<SizingRow>,
}

impl SizingAblation {
    /// Renders the ablation table.
    pub fn render(&self) -> String {
        let mut t = Table::new(vec![
            "workload".into(),
            "VAB/PAB".into(),
            "MTLB".into(),
            "speedup".into(),
            "buffer drops".into(),
        ]);
        for r in &self.rows {
            t.row(vec![
                r.label.clone(),
                r.vab_pab.to_string(),
                r.mtlb.to_string(),
                format!("{:.2}x", r.speedup),
                r.buffer_drops.to_string(),
            ]);
        }
        format!(
            "Ablation — MPP buffer sizing (Table V picks 512-entry VAB/PAB,\n\
             128-entry MTLB)\n{}\n\
             expectation: undersized buffers drop candidates and lose speedup;\n\
             beyond the knee, extra entries buy nothing (storage stays ~7.7 KB).\n",
            t.render()
        )
    }
}

/// Runs the MPP sizing sweep on the two most prefetch-sensitive workloads;
/// every (workload, sizing) cell fans out over `ctx.pool`.
pub fn ablation_mpp_sizing(ctx: &ExperimentCtx) -> SizingAblation {
    let specs: Vec<_> = [Algorithm::Pr, Algorithm::Cc]
        .into_iter()
        .map(|algorithm| WorkloadSpec {
            algorithm,
            dataset: Dataset::Kron,
            scale: ctx.scale,
        })
        .collect();

    let mut sized_cfgs = Vec::new();
    for vab_pab in [4usize, 16, 64, 512] {
        for mtlb in [16usize, 128] {
            let mut cfg = ctx.base.with_prefetcher(PrefetcherKind::Droplet);
            cfg.mpp.vab_entries = vab_pab;
            cfg.mpp.pab_entries = vab_pab;
            cfg.mpp.mtlb_entries = mtlb;
            sized_cfgs.push((vab_pab, mtlb, cfg));
        }
    }

    let mut cells = Vec::new();
    for &spec in &specs {
        let bundle = ctx.trace(&spec);
        cells.push(SweepCell {
            bundle: Arc::clone(&bundle),
            cfg: ctx.base.clone(),
        });
        for (_, _, cfg) in &sized_cfgs {
            cells.push(SweepCell {
                bundle: Arc::clone(&bundle),
                cfg: cfg.clone(),
            });
        }
    }
    let results = run_sweep(&ctx.pool, &cells, ctx.warmup, ctx.fork_sweeps);

    let stride = 1 + sized_cfgs.len();
    let mut rows = Vec::new();
    for (spec, group) in specs.iter().zip(results.chunks(stride)) {
        let base_cycles = group[0].core.cycles;
        for ((vab_pab, mtlb, _), r) in sized_cfgs.iter().zip(&group[1..]) {
            rows.push(SizingRow {
                label: spec.label(),
                vab_pab: *vab_pab,
                mtlb: *mtlb,
                speedup: base_cycles as f64 / r.core.cycles.max(1) as f64,
                buffer_drops: r.mpp.map_or(0, |m| m.buffer_drops),
            });
        }
    }
    SizingAblation { rows }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::run_workload;

    #[test]
    fn adaptive_locks_and_is_competitive() {
        let ctx = ExperimentCtx::tiny();
        let spec = WorkloadSpec {
            algorithm: Algorithm::Pr,
            dataset: Dataset::Kron,
            scale: ctx.scale,
        };
        let bundle = spec.build_trace_with_budget(ctx.budget);
        let base = run_workload(&bundle, &ctx.base, ctx.warmup);
        let droplet = run_workload(
            &bundle,
            &ctx.base.with_prefetcher(PrefetcherKind::Droplet),
            ctx.warmup,
        );
        let smpp = run_workload(
            &bundle,
            &ctx.base.with_prefetcher(PrefetcherKind::StreamMpp1),
            ctx.warmup,
        );
        let adaptive = run_workload(
            &bundle,
            &ctx.base.with_prefetcher(PrefetcherKind::AdaptiveDroplet),
            ctx.warmup,
        );
        assert!(
            adaptive.sys.adaptive_locked_data_aware.is_some(),
            "the controller should lock within the budget"
        );
        // Adaptive must land in the neighbourhood of the better fixed mode
        // (probing costs one conventional epoch).
        let best = droplet.core.cycles.min(smpp.core.cycles);
        assert!(
            adaptive.core.cycles <= best + best / 5,
            "adaptive {} vs best fixed {} (baseline {})",
            adaptive.core.cycles,
            best,
            base.core.cycles
        );
    }

    #[test]
    fn sizing_renders_and_small_buffers_drop() {
        let ctx = ExperimentCtx::tiny();
        let ablation = ablation_mpp_sizing(&ctx);
        assert!(ablation.render().contains("MPP buffer sizing"));
        let tiny_buf_drops: u64 = ablation
            .rows
            .iter()
            .filter(|r| r.vab_pab == 4)
            .map(|r| r.buffer_drops)
            .sum();
        let big_buf_drops: u64 = ablation
            .rows
            .iter()
            .filter(|r| r.vab_pab == 512)
            .map(|r| r.buffer_drops)
            .sum();
        assert!(
            tiny_buf_drops > big_buf_drops,
            "4-entry buffers should drop more: {tiny_buf_drops} vs {big_buf_drops}"
        );
    }
}
