//! A process-wide, thread-safe cache of built workload traces.
//!
//! Trace construction (graph walk + op synthesis) is the most expensive
//! *shared* step of every experiment driver: `run_study`, the figure
//! sweeps, and the ablations all replay the same `(workload, budget)`
//! bundles under different system configurations. [`TraceCache`] builds
//! each bundle exactly once per process — even under concurrent requests
//! from pool workers — and hands out `Arc` clones.
//!
//! Graphs themselves are additionally cached one layer down (see
//! [`crate::datasets`]), so a cache miss here only pays for the trace walk,
//! not graph generation.
//!
//! # Byte budget and spill-to-disk
//!
//! A cache built with [`TraceCache::with_byte_budget`] bounds the resident
//! op memory: when the summed `ops` bytes of resident bundles exceed the
//! budget, the least-recently-used bundles have their op streams encoded
//! into columnar artifacts (see `droplet_trace::columnar`, DESIGN.md §15)
//! in the spill directory, content-addressed by the FNV-1a hash of their
//! `(workload, budget)` key, and the in-memory ops are dropped. Everything
//! else in the bundle (address space, functional memory, property layout)
//! is kept as a skeleton — it is small and cannot be rebuilt from the op
//! stream. A later request decodes the artifact back (the codec verifies
//! its content digest) and re-residents the bundle, so spilling never
//! changes results, only memory and reload latency.
//!
//! [`TraceCache::with_byte_budget_drop_only`] bounds memory without a
//! spill directory: evicted bundles are dropped outright and rebuilt from
//! their [`WorkloadSpec`] on the next request. A byte budget therefore
//! *never* panics for lack of a spill dir — the invariant a long-running
//! server depends on.
//!
//! # Poisoning
//!
//! Every lock in the cache recovers from poisoning instead of panicking:
//! a build, encode, or decode that panics leaves its slot in whatever
//! valid state it last held (`Empty` is rebuilt, `Resident`/`Spilled` are
//! served as usual), so one panicked job never wedges the cache for later
//! requests. Pinned by `panicking_build_leaves_cache_usable` below.

use crate::datasets::WorkloadSpec;
use droplet_gap::TraceBundle;
use droplet_obs::fnv1a;
use droplet_trace::columnar;
use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Locks `m`, recovering the data from a poisoned mutex. Safe here because
/// every critical section in this module leaves its protected state valid
/// at all times (slots are replaced wholesale; accounting entries are
/// inserted/removed atomically from the map's point of view).
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

type Key = (WorkloadSpec, u64);

/// One cached trace. `Empty` exists only between cell creation and first
/// build; `Spilled` keeps the bundle minus its ops plus the artifact path.
enum Slot {
    Empty,
    Resident(Arc<TraceBundle>),
    Spilled {
        /// The bundle with `ops` emptied — everything replay needs besides
        /// the op stream itself.
        skeleton: Arc<TraceBundle>,
        path: PathBuf,
    },
}

/// The per-key cell: its own mutex so concurrent requesters of the *same*
/// bundle serialize on one build/reload while requesters of *different*
/// bundles proceed — the outer map lock is only held to look up the cell,
/// never during a build, encode, or decode.
type Cell = Arc<Mutex<Slot>>;

/// Resident-set accounting: ops bytes and an LRU stamp per resident key.
struct Accounting {
    clock: u64,
    resident: HashMap<Key, (u64, u64)>, // key -> (ops bytes, last-use stamp)
}

/// Spill policy; `None` budget means never spill (the default).
struct Policy {
    budget_bytes: Option<u64>,
    spill_dir: Option<PathBuf>,
}

/// A shareable trace cache; clones share the same underlying store.
#[derive(Clone)]
pub struct TraceCache {
    entries: Arc<Mutex<HashMap<Key, Cell>>>,
    accounting: Arc<Mutex<Accounting>>,
    policy: Arc<Policy>,
}

impl Default for TraceCache {
    fn default() -> Self {
        TraceCache {
            entries: Arc::default(),
            accounting: Arc::new(Mutex::new(Accounting {
                clock: 0,
                resident: HashMap::new(),
            })),
            policy: Arc::new(Policy {
                budget_bytes: None,
                spill_dir: None,
            }),
        }
    }
}

/// The artifact file name for a cache key: FNV-1a over the key's debug
/// rendering (workload spec + budget are the full identity of a trace).
fn artifact_name(key: &Key) -> String {
    format!(
        "{:016x}.dcol",
        fnv1a(format!("{:?}|{}", key.0, key.1).as_bytes())
    )
}

fn ops_bytes(bundle: &TraceBundle) -> u64 {
    (bundle.ops.len() * std::mem::size_of::<droplet_trace::MemOp>()) as u64
}

impl TraceCache {
    /// An empty, unbounded cache (nothing ever spills).
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache that keeps at most `budget_bytes` of resident trace
    /// ops, spilling least-recently-used bundles to columnar artifacts
    /// under `spill_dir` (created on first spill).
    pub fn with_byte_budget(budget_bytes: u64, spill_dir: impl Into<PathBuf>) -> Self {
        TraceCache {
            policy: Arc::new(Policy {
                budget_bytes: Some(budget_bytes),
                spill_dir: Some(spill_dir.into()),
            }),
            ..Self::default()
        }
    }

    /// An empty cache that keeps at most `budget_bytes` of resident trace
    /// ops with **no** spill directory: over-budget LRU bundles are dropped
    /// outright and rebuilt from their [`WorkloadSpec`] on the next
    /// request. Trades reload latency for zero disk use — and makes a byte
    /// budget safe to configure on servers with no writable scratch space.
    pub fn with_byte_budget_drop_only(budget_bytes: u64) -> Self {
        TraceCache {
            policy: Arc::new(Policy {
                budget_bytes: Some(budget_bytes),
                spill_dir: None,
            }),
            ..Self::default()
        }
    }

    /// The bundle for `(spec, budget)`, building it on first request and
    /// reloading it from its spill artifact (or rebuilding it) if it was
    /// evicted.
    pub fn get_or_build(&self, spec: WorkloadSpec, budget: u64) -> Arc<TraceBundle> {
        self.get_or_build_with(spec, budget, || spec.build_trace_with_budget(budget))
    }

    /// [`TraceCache::get_or_build`] with an explicit builder — the seam the
    /// poisoning tests inject faults through, and an escape hatch for
    /// callers whose bundles do not come from [`WorkloadSpec::build_trace_with_budget`].
    /// The builder runs (at most once per miss) while holding only this
    /// key's cell lock; a panicking builder leaves the cell `Empty` and the
    /// cache fully usable.
    pub fn get_or_build_with(
        &self,
        spec: WorkloadSpec,
        budget: u64,
        build: impl FnOnce() -> TraceBundle,
    ) -> Arc<TraceBundle> {
        let key = (spec, budget);
        let cell = {
            let mut map = lock_recover(&self.entries);
            map.entry(key)
                .or_insert_with(|| Arc::new(Mutex::new(Slot::Empty)))
                .clone()
        };
        let mut slot = lock_recover(&cell);
        let bundle = match &*slot {
            Slot::Resident(b) => Arc::clone(b),
            Slot::Spilled { skeleton, path } => {
                let bytes = droplet_trace::MappedFile::open(path)
                    .unwrap_or_else(|e| panic!("spilled trace {} unreadable: {e}", path.display()));
                // `decode` re-verifies the artifact's content digest, so a
                // rotted spill file fails loudly instead of replaying wrong.
                let ops = columnar::decode(&bytes)
                    .unwrap_or_else(|e| panic!("spilled trace {} corrupt: {e}", path.display()));
                let mut b = (**skeleton).clone();
                b.ops = ops;
                let b = Arc::new(b);
                *slot = Slot::Resident(Arc::clone(&b));
                b
            }
            Slot::Empty => {
                let b = Arc::new(build());
                *slot = Slot::Resident(Arc::clone(&b));
                b
            }
        };
        drop(slot);
        self.note_use(key, &bundle);
        bundle
    }

    /// Stamps `key` most-recently-used, accounts its bytes, and spills (or
    /// drops, without a spill dir) LRU entries if the resident set now
    /// exceeds the budget.
    fn note_use(&self, key: Key, bundle: &TraceBundle) {
        let victims = {
            let mut acc = lock_recover(&self.accounting);
            acc.clock += 1;
            let stamp = acc.clock;
            acc.resident.insert(key, (ops_bytes(bundle), stamp));
            let Some(budget) = self.policy.budget_bytes else {
                return;
            };
            let mut total: u64 = acc.resident.values().map(|(b, _)| b).sum();
            // Oldest-first victim list, never the entry just used: even a
            // budget of zero keeps the working bundle resident.
            let mut by_age: Vec<(Key, u64, u64)> = acc
                .resident
                .iter()
                .filter(|(k, _)| **k != key)
                .map(|(k, (b, s))| (*k, *b, *s))
                .collect();
            by_age.sort_by_key(|&(_, _, s)| s);
            let mut victims = Vec::new();
            for (k, b, _) in by_age {
                if total <= budget {
                    break;
                }
                total -= b;
                acc.resident.remove(&k);
                victims.push(k);
            }
            victims
        };
        // Spill outside the accounting lock: encode+write can be slow, and
        // each victim's own cell mutex serializes against concurrent reloads.
        for victim in victims {
            if let Some(still_resident_bytes) = self.spill(victim) {
                // Spill failed (unwritable spill dir): the bundle stays in
                // memory, so put it back in the books as the coldest entry.
                let mut acc = lock_recover(&self.accounting);
                acc.resident
                    .entry(victim)
                    .or_insert((still_resident_bytes, 0));
            }
        }
    }

    /// Evicts `key`'s resident ops: encodes them to the columnar artifact
    /// when a spill dir is configured, or drops them outright (the slot
    /// reverts to `Empty` and rebuilds on the next request) without one. A
    /// no-op if the entry is gone or already spilled (a racing user may
    /// have reloaded it — then it is simply resident and re-counted).
    /// Returns the still-resident byte count when the eviction could not
    /// happen, `None` on success or no-op.
    fn spill(&self, key: Key) -> Option<u64> {
        let cell = {
            let map = lock_recover(&self.entries);
            match map.get(&key) {
                Some(c) => Arc::clone(c),
                None => return None,
            }
        };
        let mut slot = lock_recover(&cell);
        let Slot::Resident(bundle) = &*slot else {
            return None;
        };
        let Some(dir) = self.policy.spill_dir.as_ref() else {
            // Drop-only budget: no artifact to write — rebuilt on demand.
            *slot = Slot::Empty;
            return None;
        };
        if std::fs::create_dir_all(dir).is_err() {
            return Some(ops_bytes(bundle));
        }
        let path = dir.join(artifact_name(&key));
        let encoded = columnar::encode(&bundle.ops);
        // Write-then-rename so a crash mid-write never leaves a torn
        // artifact under the content-addressed name.
        let tmp = path.with_extension("tmp");
        if std::fs::write(&tmp, &encoded).is_err() || std::fs::rename(&tmp, &path).is_err() {
            return Some(ops_bytes(bundle));
        }
        let mut skeleton = (**bundle).clone();
        skeleton.ops = Vec::new();
        *slot = Slot::Spilled {
            skeleton: Arc::new(skeleton),
            path,
        };
        None
    }

    /// How many bundles are tracked (resident + spilled + in-flight builds).
    pub fn len(&self) -> usize {
        lock_recover(&self.entries).len()
    }

    /// Whether the cache holds no bundles.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Summed `ops` bytes of the resident (non-spilled) bundles.
    pub fn resident_bytes(&self) -> u64 {
        lock_recover(&self.accounting)
            .resident
            .values()
            .map(|(b, _)| b)
            .sum()
    }

    /// How many tracked bundles are currently spilled to disk.
    pub fn spilled_len(&self) -> usize {
        let map = lock_recover(&self.entries);
        map.values()
            .filter(|c| matches!(&*lock_recover(c), Slot::Spilled { .. }))
            .count()
    }

    /// Drops every cached bundle (frees memory between experiment suites).
    /// Spill artifacts on disk are left behind; a rebuilt entry overwrites
    /// its artifact on the next spill.
    pub fn clear(&self) {
        lock_recover(&self.entries).clear();
        lock_recover(&self.accounting).resident.clear();
    }
}

impl fmt::Debug for TraceCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceCache")
            .field("entries", &self.len())
            .field("resident_bytes", &self.resident_bytes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::JobPool;
    use droplet_gap::Algorithm;
    use droplet_graph::{Dataset, DatasetScale};

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            algorithm: Algorithm::Pr,
            dataset: Dataset::Kron,
            scale: DatasetScale::Tiny,
        }
    }

    fn spec2() -> WorkloadSpec {
        WorkloadSpec {
            algorithm: Algorithm::Cc,
            dataset: Dataset::Kron,
            scale: DatasetScale::Tiny,
        }
    }

    fn temp_spill_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("droplet-spill-{tag}-{}", std::process::id()))
    }

    #[test]
    fn same_key_returns_same_allocation() {
        let cache = TraceCache::new();
        let a = cache.get_or_build(spec(), 30_000);
        let b = cache.get_or_build(spec(), 30_000);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_budgets_are_distinct_entries() {
        let cache = TraceCache::new();
        let a = cache.get_or_build(spec(), 30_000);
        let b = cache.get_or_build(spec(), 40_000);
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(a.ops.len() < b.ops.len());
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn clones_share_the_store() {
        let cache = TraceCache::new();
        let twin = cache.clone();
        let a = cache.get_or_build(spec(), 30_000);
        let b = twin.get_or_build(spec(), 30_000);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn concurrent_requests_build_once() {
        let cache = TraceCache::new();
        let bundles = JobPool::with_threads(8).run(
            (0..16)
                .map(|_| {
                    let cache = cache.clone();
                    move || cache.get_or_build(spec(), 30_000)
                })
                .collect::<Vec<_>>(),
        );
        assert_eq!(cache.len(), 1);
        assert!(bundles.iter().all(|b| Arc::ptr_eq(b, &bundles[0])));
    }

    #[test]
    fn unbounded_cache_never_spills() {
        let cache = TraceCache::new();
        let _ = cache.get_or_build(spec(), 30_000);
        let _ = cache.get_or_build(spec2(), 30_000);
        assert_eq!(cache.spilled_len(), 0);
        assert!(cache.resident_bytes() > 0);
    }

    #[test]
    fn over_budget_spills_lru_and_reload_is_identical() {
        let dir = temp_spill_dir("lru");
        // Budget of 1 byte: any second resident bundle evicts the first.
        let cache = TraceCache::with_byte_budget(1, &dir);
        let a = cache.get_or_build(spec(), 30_000);
        assert_eq!(cache.spilled_len(), 0, "just-used entry never spills");
        let _b = cache.get_or_build(spec2(), 30_000);
        assert_eq!(cache.spilled_len(), 1, "LRU entry spilled");
        assert_eq!(cache.len(), 2, "spilled entries stay tracked");

        // Reload: ops decode bit-exact from the artifact, everything else
        // comes from the retained skeleton.
        let a2 = cache.get_or_build(spec(), 30_000);
        assert!(!Arc::ptr_eq(&a, &a2), "reload is a new allocation");
        assert_eq!(a.ops, a2.ops);
        assert_eq!(a.instructions, a2.instructions);
        assert_eq!(a.digest, a2.digest);
        assert_eq!(a.property_base, a2.property_base);
        // Reloading a pushed the other entry out in turn.
        assert_eq!(cache.spilled_len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn budget_fitting_both_keeps_both_resident() {
        let dir = temp_spill_dir("fit");
        let cache = TraceCache::with_byte_budget(u64::MAX, &dir);
        let _ = cache.get_or_build(spec(), 30_000);
        let _ = cache.get_or_build(spec2(), 30_000);
        assert_eq!(cache.spilled_len(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drop_only_budget_evicts_without_dir_and_rebuilds() {
        // A byte budget with no spill dir must never hit the old
        // `expect("spill without dir")` panic: victims drop and rebuild.
        let cache = TraceCache::with_byte_budget_drop_only(1);
        let a = cache.get_or_build(spec(), 30_000);
        let b = cache.get_or_build(spec2(), 30_000);
        assert_eq!(cache.spilled_len(), 0, "nothing spills without a dir");
        assert_eq!(cache.len(), 2, "dropped entries stay tracked");
        assert_eq!(
            cache.resident_bytes(),
            ops_bytes(&b),
            "only the just-used bundle stays resident"
        );
        let a2 = cache.get_or_build(spec(), 30_000);
        assert!(!Arc::ptr_eq(&a, &a2), "rebuild is a new allocation");
        assert_eq!(a.ops, a2.ops);
        assert_eq!(a.digest, a2.digest);
    }

    #[test]
    fn panicking_build_leaves_cache_usable() {
        let cache = TraceCache::new();
        // A job that panics mid-build poisons the key's cell mutex...
        let poisoned = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_build_with(spec(), 30_000, || panic!("injected build fault"))
        }));
        assert!(poisoned.is_err());
        // ...but every later request — same key and other keys — recovers
        // and serves normally instead of propagating the poison forever.
        let a = cache.get_or_build(spec(), 30_000);
        let b = cache.get_or_build(spec(), 30_000);
        assert!(Arc::ptr_eq(&a, &b));
        let other = cache.get_or_build(spec2(), 30_000);
        assert!(!other.ops.is_empty());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn panicking_pool_job_leaves_cache_usable_for_other_workers() {
        let cache = TraceCache::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            JobPool::with_threads(4).run(
                (0..8)
                    .map(|i| {
                        let cache = cache.clone();
                        move || {
                            if i == 3 {
                                cache.get_or_build_with(spec(), 30_000, || {
                                    panic!("worker {i} exploded")
                                })
                            } else {
                                cache.get_or_build(spec2(), 30_000)
                            }
                        }
                    })
                    .collect::<Vec<_>>(),
            )
        }));
        assert!(result.is_err(), "pool propagates the worker panic");
        // The cache survives the panicked worker: both keys still serve.
        let a = cache.get_or_build(spec(), 30_000);
        assert!(!a.ops.is_empty());
        let b = cache.get_or_build(spec2(), 30_000);
        assert!(!b.ops.is_empty());
    }

    #[test]
    fn resident_bytes_tracks_ops_footprint() {
        let cache = TraceCache::new();
        let a = cache.get_or_build(spec(), 30_000);
        assert_eq!(
            cache.resident_bytes(),
            (a.ops.len() * std::mem::size_of::<droplet_trace::MemOp>()) as u64
        );
    }
}
