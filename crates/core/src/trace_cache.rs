//! A process-wide, thread-safe cache of built workload traces.
//!
//! Trace construction (graph walk + op synthesis) is the most expensive
//! *shared* step of every experiment driver: `run_study`, the figure
//! sweeps, and the ablations all replay the same `(workload, budget)`
//! bundles under different system configurations. [`TraceCache`] builds
//! each bundle exactly once per process — even under concurrent requests
//! from pool workers — and hands out `Arc` clones.
//!
//! Graphs themselves are additionally cached one layer down (see
//! [`crate::datasets`]), so a cache miss here only pays for the trace walk,
//! not graph generation.

use crate::datasets::WorkloadSpec;
use droplet_gap::TraceBundle;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

type Key = (WorkloadSpec, u64);

/// The once-per-key build cell: cloned out of the map so the map lock is
/// never held across a trace build.
type Cell = Arc<OnceLock<Arc<TraceBundle>>>;

/// A shareable trace cache; clones share the same underlying store.
#[derive(Clone, Default)]
pub struct TraceCache {
    // Per-key OnceLock so concurrent requesters of the *same* bundle block
    // on one build while requesters of *different* bundles proceed — the
    // outer map lock is only held to look up the cell, never during a build.
    entries: Arc<Mutex<HashMap<Key, Cell>>>,
}

impl TraceCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bundle for `(spec, budget)`, building it on first request.
    pub fn get_or_build(&self, spec: WorkloadSpec, budget: u64) -> Arc<TraceBundle> {
        let cell = {
            let mut map = self.entries.lock().expect("trace cache poisoned");
            map.entry((spec, budget)).or_default().clone()
        };
        cell.get_or_init(|| Arc::new(spec.build_trace_with_budget(budget)))
            .clone()
    }

    /// How many bundles are resident (counting in-flight builds).
    pub fn len(&self) -> usize {
        self.entries.lock().expect("trace cache poisoned").len()
    }

    /// Whether the cache holds no bundles.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached bundle (frees memory between experiment suites).
    pub fn clear(&self) {
        self.entries.lock().expect("trace cache poisoned").clear();
    }
}

impl fmt::Debug for TraceCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceCache")
            .field("entries", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::JobPool;
    use droplet_gap::Algorithm;
    use droplet_graph::{Dataset, DatasetScale};

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            algorithm: Algorithm::Pr,
            dataset: Dataset::Kron,
            scale: DatasetScale::Tiny,
        }
    }

    #[test]
    fn same_key_returns_same_allocation() {
        let cache = TraceCache::new();
        let a = cache.get_or_build(spec(), 30_000);
        let b = cache.get_or_build(spec(), 30_000);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_budgets_are_distinct_entries() {
        let cache = TraceCache::new();
        let a = cache.get_or_build(spec(), 30_000);
        let b = cache.get_or_build(spec(), 40_000);
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(a.ops.len() < b.ops.len());
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn clones_share_the_store() {
        let cache = TraceCache::new();
        let twin = cache.clone();
        let a = cache.get_or_build(spec(), 30_000);
        let b = twin.get_or_build(spec(), 30_000);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn concurrent_requests_build_once() {
        let cache = TraceCache::new();
        let bundles = JobPool::with_threads(8).run(
            (0..16)
                .map(|_| {
                    let cache = cache.clone();
                    move || cache.get_or_build(spec(), 30_000)
                })
                .collect::<Vec<_>>(),
        );
        assert_eq!(cache.len(), 1);
        assert!(bundles.iter().all(|b| Arc::ptr_eq(b, &bundles[0])));
    }
}
