//! Golden-digest regression test for the per-op demand path.
//!
//! Replays a small deterministic trace through every prefetcher
//! configuration and asserts an exact FNV-1a digest over *every* counter the
//! simulator reports: core timing, per-level cache statistics, DRAM traffic,
//! MPP activity, and the orchestration stats. The expected values were
//! captured before the demand-path flattening (lazy translation, stamp-LRU
//! TLB, in-cache prefetch tags, heap MSHR) landed, so any semantic drift in
//! that refactor — or in future ones — shows up as a digest mismatch rather
//! than a subtle statistics skew.
//!
//! If a *deliberate* behaviour change invalidates a digest, re-capture it by
//! running the test and copying the `actual` value from the failure message
//! (each run prints the full digest table on mismatch).

use droplet::gap::Algorithm;
use droplet::graph::{Dataset, DatasetScale};
use droplet::obs::ObsConfig;
use droplet::pool::JobPool;
use droplet::trace::DataType;
use droplet::{run_workload, PrefetcherKind, RunResult, SystemConfig};
use std::sync::Arc;

/// 64-bit FNV-1a over a stream of words.
struct Digest(u64);

impl Digest {
    fn new() -> Self {
        Digest(0xcbf2_9ce4_8422_2325)
    }

    fn word(&mut self, w: u64) {
        for byte in w.to_le_bytes() {
            self.0 ^= u64::from(byte);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn opt(&mut self, w: Option<u64>) {
        match w {
            Some(v) => {
                self.word(1);
                self.word(v);
            }
            None => self.word(0),
        }
    }

    fn typed(&mut self, c: &droplet::cache::TypedCounter) {
        for dt in DataType::ALL {
            self.word(c.get(dt));
        }
    }

    fn cache(&mut self, s: &droplet::cache::CacheStats) {
        self.typed(&s.demand_accesses);
        self.typed(&s.demand_hits);
        self.typed(&s.late_prefetch_hits);
        self.typed(&s.prefetch_first_uses);
        self.typed(&s.prefetch_fills);
        self.typed(&s.prefetch_unused_evictions);
        self.typed(&s.demand_fills);
        self.word(s.inclusion_invalidations);
    }
}

/// Folds every observable of a run into one digest word.
fn digest(r: &RunResult) -> u64 {
    let mut d = Digest::new();
    d.word(r.core.cycles);
    d.word(r.core.instructions);
    d.word(r.core.memops);
    d.word(r.core.loads);
    for s in r.core.serviced_by {
        d.word(s);
    }
    let st = &r.core.cycle_stack;
    for w in [st.base, st.l1, st.l2, st.l3, st.dram, st.other] {
        d.word(w);
    }
    d.word(r.core.mlp.avg_outstanding.to_bits());
    d.word(r.core.mlp.busy_cycles);
    d.word(r.core.mlp.latency_sum);
    d.word(r.core.mlp.requests);

    d.cache(&r.l1);
    match &r.l2 {
        Some(l2) => {
            d.word(1);
            d.cache(l2);
        }
        None => d.word(0),
    }
    d.cache(&r.l3);

    d.word(r.dram.demand_accesses);
    d.word(r.dram.prefetch_accesses);
    d.word(r.dram.bus_busy_cycles);
    d.word(r.dram.queue_delay_cycles);
    d.opt(r.dram.first_request_at);
    d.word(r.dram.last_complete_at);

    match &r.mpp {
        Some(m) => {
            d.word(1);
            for w in [
                m.lines_scanned,
                m.ids_scanned,
                m.candidates,
                m.buffer_drops,
                m.page_fault_drops,
                m.out_of_bounds,
                m.mtlb_walks,
            ] {
                d.word(w);
            }
        }
        None => d.word(0),
    }

    d.word(r.sys.prefetch_unmapped_drops);
    d.word(r.sys.prefetch_redundant);
    d.word(r.sys.mpp_copied_from_llc);
    d.word(r.sys.mpp_redundant);
    d.word(r.sys.writebacks);
    d.word(r.sys.dtlb_misses);
    d.typed(&r.sys.prefetch_useful);
    d.typed(&r.sys.prefetch_wasted);
    d.opt(r.sys.adaptive_locked_data_aware.map(u64::from));
    d.0
}

/// The evaluated kinds plus the no-prefetcher baseline and the adaptive
/// extension: every code path through `System::access`.
const KINDS: [PrefetcherKind; 8] = [
    PrefetcherKind::None,
    PrefetcherKind::Ghb,
    PrefetcherKind::Vldp,
    PrefetcherKind::Stream,
    PrefetcherKind::StreamMpp1,
    PrefetcherKind::Droplet,
    PrefetcherKind::MonoDropletL1,
    PrefetcherKind::AdaptiveDroplet,
];

fn check(label: &str, runs: &[(PrefetcherKind, u64)], golden: &[(&str, u64)]) {
    let mut ok = true;
    for ((kind, actual), (gname, want)) in runs.iter().zip(golden) {
        assert_eq!(kind.name(), *gname, "config order drifted in {label}");
        if actual != want {
            ok = false;
            eprintln!("{label}/{gname}: digest {actual:#018x}, golden {want:#018x}");
        }
    }
    assert!(
        ok,
        "{label}: digests diverged; table of actuals:\n{}",
        runs.iter()
            .map(|(k, a)| format!("    (\"{}\", {:#018x}),", k.name(), a))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// PageRank through every prefetcher kind, with a warm-up window so the
/// `warmup_done` stats-reset path is covered too.
#[test]
fn pagerank_digests_are_stable() {
    let g = Arc::new(Dataset::Kron.build(DatasetScale::Tiny));
    let bundle = Algorithm::Pr.trace(&g, 120_000);
    let cfg = SystemConfig::test_scale();
    let runs: Vec<(PrefetcherKind, u64)> = KINDS
        .iter()
        .map(|&k| {
            let r = run_workload(&bundle, &cfg.with_prefetcher(k), 5_000);
            (k, digest(&r))
        })
        .collect();
    // Re-captured when warm-up became demand-only (prefetchers inert until
    // the boundary): every prefetcher row with warm-up > 0 shifted; the
    // baseline row — no prefetcher to gate — is unchanged from the original
    // capture.
    const GOLDEN: [(&str, u64); 8] = [
        ("baseline", 0xab6ad52a732dff62),
        ("GHB", 0xf9a7af3425df6f0c),
        ("VLDP", 0x226f44f5c747f0bf),
        ("stream", 0x4cc6d0a9c8de5bd9),
        ("streamMPP1", 0x9fb55d2f8e42cf25),
        ("DROPLET", 0x095f19917f3a41f2),
        ("monoDROPLETL1", 0x2bdd5a4ce45f6fc3),
        ("DROPLET-adaptive", 0x0a43e88fbe5f82c6),
    ];
    check("pr", &runs, &GOLDEN);
}

/// BFS with no private L2: the demand path's other branch (L1 → L3 direct),
/// plus a DROPLET run on the same trace.
#[test]
fn bfs_no_l2_digests_are_stable() {
    let g = Arc::new(Dataset::Kron.build(DatasetScale::Tiny));
    let bundle = Algorithm::Bfs.trace(&g, 80_000);
    let no_l2 = run_workload(
        &bundle,
        &SystemConfig::test_scale().with_l2(None),
        0, // no warm-up: the cold path must stay stable too
    );
    let droplet = run_workload(
        &bundle,
        &SystemConfig::test_scale().with_prefetcher(PrefetcherKind::Droplet),
        2_000,
    );
    let runs = [
        (PrefetcherKind::None, digest(&no_l2)),
        (PrefetcherKind::Droplet, digest(&droplet)),
    ];
    // DROPLET re-captured for demand-only warm-up; the zero-warm-up
    // baseline row is untouched (no boundary, nothing gated).
    const GOLDEN: [(&str, u64); 2] = [
        ("baseline", 0xbac0a201eba862f6),
        ("DROPLET", 0x51cd4ce369fe8a0c),
    ];
    check("bfs-no-l2", &runs, &GOLDEN);
}

/// Pins the corrected post-warm-up bandwidth window. The old formula
/// (`bus_busy / core.cycles`) ignored *when* DRAM became active inside the
/// measurement window, so a warm-up-heavy run whose window leads with cache
/// hits diluted its utilization with idle-DRAM cycles. The trace here makes
/// that dilution deterministic: the warm-up half streams cold lines and
/// then pins a small hot set, the window replays the hot set from L1 for
/// thousands of ops, and only a late tail touches fresh lines — so the
/// corrected window (clipped to `first_request_at`) must be strictly
/// tighter than the old one.
#[test]
fn bandwidth_window_excludes_idle_lead_in() {
    use droplet::trace::{AccessKind, MemOp, OpId, VirtAddr};

    let g = Arc::new(Dataset::Kron.build(DatasetScale::Tiny));
    let mut bundle = Algorithm::Pr.trace(&g, 120_000);

    // Distinct cache lines the real trace touched: all mapped in the
    // bundle's address space, so the synthetic replay below never faults.
    let mut lines: Vec<u64> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for op in &bundle.ops {
        let line = op.addr().line_base().raw();
        if seen.insert(line) {
            lines.push(line);
        }
        if lines.len() == 1108 {
            break;
        }
    }
    assert_eq!(lines.len(), 1108, "trace too small to source lines");
    let (cold, rest) = lines.split_at(900);
    let (hot, fresh) = rest.split_at(8);

    let mut ops = Vec::new();
    let push = |addr: u64, ops: &mut Vec<MemOp>| {
        let id = OpId(ops.len() as u64);
        ops.push(MemOp::new(
            VirtAddr::new(addr),
            AccessKind::Load,
            DataType::Property,
            None,
            id,
            0,
        ));
    };
    // Warm-up half: DRAM-heavy cold streaming, then pin the hot set.
    for i in 0..1800 {
        push(cold[i % cold.len()], &mut ops);
    }
    for i in 0..4200 {
        push(hot[i % hot.len()], &mut ops);
    }
    // Measurement window: a long all-hit lead-in, then a late DRAM burst.
    for i in 0..5800 {
        push(hot[i % hot.len()], &mut ops);
    }
    for &f in fresh {
        push(f, &mut ops);
    }
    assert_eq!(ops.len(), 12_000);
    bundle.instructions = ops.len() as u64;
    bundle.ops = ops;

    // Request more warm-up than the half-trace clamp allows: the boundary
    // lands exactly at the start of the hit run, and the clamp surfacing
    // is exercised on the same run.
    let requested = bundle.ops.len();
    let r = run_workload(&bundle, &SystemConfig::test_scale(), requested);
    assert!(r.warmup_clamped, "full-trace warm-up request must clamp");
    assert_eq!(r.warmup_ops_requested, requested as u64);
    assert_eq!(r.warmup_ops_applied, (requested / 2) as u64);
    assert_eq!(r.manifest.warmup_boundary_cycle, r.warmup_boundary_cycle);
    assert!(r.warmup_boundary_cycle > 0, "boundary must be recorded");

    let first = r.dram.first_request_at.expect("tail must reach DRAM");
    assert!(
        first > r.warmup_boundary_cycle + 500,
        "hit lead-in must keep DRAM idle well past the boundary: first \
         request at {first}, boundary {}",
        r.warmup_boundary_cycle
    );
    let old = r.dram.utilization(r.core.cycles.max(1));
    let fixed = r.bandwidth_utilization();
    assert!(
        fixed > old,
        "corrected window must beat the old formula on a warm-up-heavy \
         run: fixed {fixed:.6} vs old {old:.6}"
    );
    assert!(fixed <= 1.0, "utilization is a fraction: {fixed}");
}

/// Observability must be measurement-only: enabling the sampler may not
/// perturb a single simulated counter, and the journal's final epoch must
/// aggregate to exactly the `RunResult` the same run reports.
#[test]
fn obs_sampling_is_digest_invariant_and_exact() {
    let g = Arc::new(Dataset::Kron.build(DatasetScale::Tiny));
    let bundle = Algorithm::Bfs.trace(&g, 80_000);
    let cfg = SystemConfig::test_scale().with_prefetcher(PrefetcherKind::Droplet);
    let warmup = 2_000;
    // A prime epoch length forces a partial final epoch (flush path).
    let epoch_ops = 997;

    let off = run_workload(&bundle, &cfg, warmup);
    let on = run_workload(
        &bundle,
        &cfg.clone().with_obs(ObsConfig::every(epoch_ops)),
        warmup,
    );
    assert_eq!(
        digest(&off),
        digest(&on),
        "enabling observability changed simulated behaviour"
    );
    assert!(
        off.journal.is_none(),
        "journal must be absent when obs is off"
    );

    let journal = on.journal.as_ref().expect("obs run must carry a journal");
    assert_eq!(journal.epoch_ops, epoch_ops);
    assert_eq!(journal.window_start, on.warmup_boundary_cycle);
    assert_eq!(journal.dropped_epochs, 0);
    assert_eq!(
        journal.epoch_count() as u64,
        on.core.memops.div_ceil(epoch_ops),
        "epoch count must match retired window ops / epoch size"
    );
    assert_eq!(on.manifest.epochs, Some(journal.epoch_count() as u64));
    assert_eq!(on.manifest.epoch_ops, Some(epoch_ops));

    // The final cumulative snapshot is the end-of-run statistics.
    let last = journal.final_snapshot().expect("journal has epochs");
    assert_eq!(last.ops, on.core.memops);
    assert_eq!(last.instructions, on.core.instructions);
    assert_eq!(last.cycle, on.warmup_boundary_cycle + on.core.cycles);
    assert_eq!(last.l1, on.l1);
    assert_eq!(last.l2, on.l2);
    assert_eq!(last.l3, on.l3);
    assert_eq!(last.dram, on.dram);
    assert_eq!(last.mpp, on.mpp);
    assert_eq!(last.prefetch_useful, on.sys.prefetch_useful);
    assert_eq!(last.prefetch_wasted, on.sys.prefetch_wasted);
    assert_eq!(last.writebacks, on.sys.writebacks);
    assert_eq!(
        journal.final_bandwidth_utilization().to_bits(),
        on.bandwidth_utilization().to_bits(),
        "journal and RunResult must agree bit-for-bit on the corrected \
         bandwidth utilization"
    );

    // One JSONL line per epoch; derived metrics line up with the samples.
    assert_eq!(journal.to_jsonl().lines().count(), journal.epoch_count());
    assert_eq!(journal.epochs().len(), journal.epoch_count());
}

/// Forked measurement must be indistinguishable from full replay: one
/// warmed snapshot fanned out across every `sim_replay` configuration (the
/// seven evaluated kinds, which all share the baseline hierarchy and hence
/// one warmup key) digests bit-identically to seven from-scratch runs —
/// over *every* reported counter, not a summary statistic.
#[test]
fn forked_runs_digest_identically_to_full_replay() {
    use droplet::warm_snapshot;

    let g = Arc::new(Dataset::Kron.build(DatasetScale::Tiny));
    let bundle = Algorithm::Pr.trace(&g, 120_000);
    let base = SystemConfig::test_scale();
    let warmup = 20_000;
    let snap = warm_snapshot(&bundle, &base, warmup);
    // The adaptive kind rides along in `KINDS`, widening coverage past the
    // seven replayed configurations at no cost.
    for &kind in &KINDS {
        let cfg = base.with_prefetcher(kind);
        let forked = droplet::run_forked(&bundle, &snap, &cfg);
        let scratch = run_workload(&bundle, &cfg, warmup);
        assert_eq!(
            digest(&forked),
            digest(&scratch),
            "{}: forked digest diverged from full replay",
            kind.name()
        );
    }
}

/// Zero-copy replay must be invisible: replaying a workload from its
/// mmap'd columnar artifact (DESIGN.md §15) digests bit-identically to the
/// in-RAM `Vec<MemOp>` replay, for every bench configuration, on one
/// worker and on four. The chunked [`droplet::run_workload_from`] path and
/// the monolithic path drive the same engine, so any divergence here means
/// the codec or the chunking changed simulated behaviour.
#[test]
fn columnar_mmap_replay_digests_match_in_ram_replay() {
    use droplet::run_workload_from;
    use droplet::trace::{columnar, open_columnar};

    let g = Arc::new(Dataset::Kron.build(DatasetScale::Tiny));
    let bundle = Arc::new(Algorithm::Pr.trace(&g, 120_000));
    let cfg = SystemConfig::test_scale();
    let warmup = 5_000;

    let dir = std::env::temp_dir().join(format!("droplet-colrep-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("pr-kron.dcol");
    std::fs::write(&path, columnar::encode(&bundle.ops)).unwrap();

    let in_ram: Vec<u64> = KINDS
        .iter()
        .map(|&k| digest(&run_workload(&bundle, &cfg.with_prefetcher(k), warmup)))
        .collect();

    for threads in [1usize, 4] {
        let replayed: Vec<u64> = JobPool::with_threads(threads).run(
            KINDS
                .iter()
                .map(|&k| {
                    let bundle = Arc::clone(&bundle);
                    let cfg = cfg.with_prefetcher(k);
                    let path = path.clone();
                    move || {
                        let mut source = open_columnar(&path).expect("artifact must open");
                        assert_eq!(
                            source.digest(),
                            columnar::content_digest(&bundle.ops),
                            "artifact content digest must match the ops it encodes"
                        );
                        digest(&run_workload_from(&mut source, &bundle, &cfg, warmup))
                    }
                })
                .collect(),
        );
        for ((&kind, ram), col) in KINDS.iter().zip(&in_ram).zip(&replayed) {
            assert_eq!(
                ram,
                col,
                "{} ({threads} threads): columnar replay digest {col:#018x} \
                 != in-RAM digest {ram:#018x}",
                kind.name()
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The same fan-out run serially and on four workers must digest
/// identically: simulation results may not depend on the thread count.
/// (Explicit `with_threads` rather than `DROPLET_THREADS` — mutating the
/// environment would race with other tests in this binary.)
#[test]
fn digests_are_thread_count_invariant() {
    let g = Arc::new(Dataset::Kron.build(DatasetScale::Tiny));
    let bundle = Arc::new(Algorithm::Pr.trace(&g, 60_000));
    let cfg = SystemConfig::test_scale();

    let jobs = |pool: JobPool| -> Vec<u64> {
        pool.run(
            KINDS
                .iter()
                .map(|&k| {
                    let bundle = Arc::clone(&bundle);
                    let cfg = cfg.with_prefetcher(k);
                    move || digest(&run_workload(&bundle, &cfg, 2_000))
                })
                .collect(),
        )
    };

    let serial = jobs(JobPool::with_threads(1));
    let parallel = jobs(JobPool::with_threads(4));
    for ((&kind, s), p) in KINDS.iter().zip(&serial).zip(&parallel) {
        assert_eq!(
            s,
            p,
            "{}: serial digest {s:#018x} != 4-thread digest {p:#018x}",
            kind.name()
        );
    }
}

/// The four non-LRU replacement policies of the policy laboratory. The
/// default-LRU goldens above double as the seam's no-regression proof: they
/// were captured before the `ReplacementPolicy` seam existed and still must
/// match bit-exactly.
const POLICIES: [droplet::cache::ReplacementPolicy; 4] = [
    droplet::cache::ReplacementPolicy::Srrip,
    droplet::cache::ReplacementPolicy::Brrip,
    droplet::cache::ReplacementPolicy::Drrip,
    droplet::cache::ReplacementPolicy::Ship,
];

/// Every policy must be run-to-run deterministic and thread-count
/// invariant — the same LLC-policy run serially, twice, and on a 4-worker
/// pool produces one digest. Also pins the manifest's policy triple.
#[test]
fn policy_digests_are_deterministic_and_thread_invariant() {
    let g = Arc::new(Dataset::Kron.build(DatasetScale::Tiny));
    let bundle = Arc::new(Algorithm::Pr.trace(&g, 60_000));
    let base = SystemConfig::test_scale().with_prefetcher(PrefetcherKind::Droplet);

    let jobs = |pool: JobPool| -> Vec<u64> {
        pool.run(
            POLICIES
                .iter()
                .map(|&p| {
                    let bundle = Arc::clone(&bundle);
                    let cfg = base.clone().with_l3_policy(p).with_l2_policy(p);
                    move || digest(&run_workload(&bundle, &cfg, 2_000))
                })
                .collect(),
        )
    };

    let first = jobs(JobPool::with_threads(1));
    let again = jobs(JobPool::with_threads(1));
    let parallel = jobs(JobPool::with_threads(4));
    for ((&p, f), (a, par)) in POLICIES.iter().zip(&first).zip(again.iter().zip(&parallel)) {
        assert_eq!(f, a, "{p}: rerun digest drifted");
        assert_eq!(f, par, "{p}: 4-thread digest drifted");
    }

    let r = run_workload(
        &bundle,
        &base
            .clone()
            .with_l3_policy(droplet::cache::ReplacementPolicy::Ship),
        2_000,
    );
    assert_eq!(r.manifest.policies, "LRU/LRU/SHiP");
}

/// Forked measurement under every policy: a warmed snapshot of a
/// policy-bearing hierarchy replayed through `run_forked` digests
/// bit-identically to the from-scratch run — RRIP state (RRPVs, PSEL, the
/// bimodal counter, the SHCT) must survive the snapshot/fork boundary.
#[test]
fn forked_policy_runs_digest_identically_to_full_replay() {
    use droplet::warm_snapshot;

    let g = Arc::new(Dataset::Kron.build(DatasetScale::Tiny));
    let bundle = Algorithm::Pr.trace(&g, 120_000);
    let warmup = 20_000;
    for &p in &POLICIES {
        let base = SystemConfig::test_scale().with_l3_policy(p);
        let snap = warm_snapshot(&bundle, &base, warmup);
        for kind in [PrefetcherKind::None, PrefetcherKind::Droplet] {
            let cfg = base.with_prefetcher(kind);
            let forked = droplet::run_forked(&bundle, &snap, &cfg);
            let scratch = run_workload(&bundle, &cfg, warmup);
            assert_eq!(
                digest(&forked),
                digest(&scratch),
                "{p}/{}: forked digest diverged from full replay",
                kind.name()
            );
        }
    }
}

/// The strongest cross-product equality in the suite: for every prefetcher
/// kind × LLC policy, the production stack — batched hot-lane replay,
/// forked from a shared warm snapshot, scheduled through the pipelined
/// sweep on one *and* four workers — must digest bit-identically to the
/// plainest possible reference: a from-scratch, scalar-lane, single-run
/// replay. One assertion per cell covers the hot lane, the fork restore,
/// and the sweep scheduling at once; any of the three diverging breaks it.
#[test]
fn batched_forked_sweeps_match_the_scalar_reference() {
    use droplet::{run_sweep, run_workload_scalar, SweepCell};

    let g = Arc::new(Dataset::Kron.build(DatasetScale::Tiny));
    let bundle = Arc::new(Algorithm::Pr.trace(&g, 40_000));
    let warmup = 4_000;

    let mut all = vec![droplet::cache::ReplacementPolicy::Lru];
    all.extend(POLICIES);
    let cells: Vec<SweepCell> = all
        .iter()
        .flat_map(|&p| KINDS.iter().map(move |&k| (p, k)))
        .map(|(p, k)| SweepCell {
            bundle: Arc::clone(&bundle),
            cfg: SystemConfig::test_scale()
                .with_l3_policy(p)
                .with_prefetcher(k),
        })
        .collect();
    assert_eq!(cells.len(), 40, "5 policies x 8 kinds");

    let serial = run_sweep(&JobPool::with_threads(1), &cells, warmup, true);
    let parallel = run_sweep(&JobPool::with_threads(4), &cells, warmup, true);
    for ((cell, s), p) in cells.iter().zip(&serial).zip(&parallel) {
        let reference = run_workload_scalar(&cell.bundle, &cell.cfg, warmup);
        let label = format!("{}/{}", cell.cfg.l3.policy, cell.cfg.prefetcher.name());
        assert_eq!(
            digest(s),
            digest(&reference),
            "{label}: serial batched+forked sweep diverged from the scalar reference"
        );
        assert_eq!(
            digest(p),
            digest(&reference),
            "{label}: 4-thread batched+forked sweep diverged from the scalar reference"
        );
    }
}

/// A mixed-policy sweep must be fork-safe: configurations with different
/// LLC policies have different warm-up keys, so `run_sweep` may only share
/// snapshots within a policy group — and forked results still match the
/// unforked sweep bit-for-bit.
#[test]
fn mixed_policy_sweep_forks_safely() {
    use droplet::{run_sweep, SweepCell};

    let g = Arc::new(Dataset::Kron.build(DatasetScale::Tiny));
    let bundle = Arc::new(Algorithm::Pr.trace(&g, 60_000));
    // Two cells per policy (baseline + DROPLET) so each policy group has a
    // shareable warm-up, interleaved so grouping has to work by key rather
    // than adjacency. LRU rides along as the fifth policy.
    let mut cells = Vec::new();
    let mut all = vec![droplet::cache::ReplacementPolicy::Lru];
    all.extend(POLICIES);
    for &p in &all {
        for kind in [PrefetcherKind::None, PrefetcherKind::Droplet] {
            cells.push(SweepCell {
                bundle: Arc::clone(&bundle),
                cfg: SystemConfig::test_scale()
                    .with_l3_policy(p)
                    .with_prefetcher(kind),
            });
        }
    }
    let pool = JobPool::with_threads(4);
    let forked = run_sweep(&pool, &cells, 2_000, true);
    let scratch = run_sweep(&pool, &cells, 2_000, false);
    for ((cell, f), s) in cells.iter().zip(&forked).zip(&scratch) {
        assert_eq!(
            digest(f),
            digest(s),
            "{}/{}: forked sweep digest diverged",
            cell.cfg.l3.policy,
            cell.cfg.prefetcher.name()
        );
    }
    // The fork actually engaged: every policy group shares one warm-up.
    assert!(
        forked
            .iter()
            .filter(|r| r.manifest.forked_from.is_some())
            .count()
            >= all.len(),
        "expected at least one forked run per policy group"
    );
}
