//! Prefetcher shootout: all six evaluated configurations (paper Section
//! VII-A) against one workload, printed as a mini Fig. 11 row.
//!
//! Run with: `cargo run --release --example prefetcher_shootout [ALGO] [DATASET]`
//! where ALGO is one of bc/bfs/pr/sssp/cc and DATASET one of
//! kron/urand/orkut/livejournal/road (defaults: cc kron).

use droplet::experiments::ExperimentCtx;
use droplet::report::Table;
use droplet::{run_workload, PrefetcherKind, WorkloadSpec};
use droplet_gap::Algorithm;
use droplet_graph::Dataset;
use droplet_trace::DataType;

fn parse_algo(s: &str) -> Algorithm {
    match s.to_ascii_lowercase().as_str() {
        "bc" => Algorithm::Bc,
        "bfs" => Algorithm::Bfs,
        "pr" => Algorithm::Pr,
        "sssp" => Algorithm::Sssp,
        "cc" => Algorithm::Cc,
        other => panic!("unknown algorithm {other:?} (want bc/bfs/pr/sssp/cc)"),
    }
}

fn parse_dataset(s: &str) -> Dataset {
    match s.to_ascii_lowercase().as_str() {
        "kron" => Dataset::Kron,
        "urand" => Dataset::Urand,
        "orkut" => Dataset::Orkut,
        "livejournal" | "lj" => Dataset::LiveJournal,
        "road" => Dataset::Road,
        other => panic!("unknown dataset {other:?}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let algorithm = args.get(1).map(|s| parse_algo(s)).unwrap_or(Algorithm::Cc);
    let dataset = args
        .get(2)
        .map(|s| parse_dataset(s))
        .unwrap_or(Dataset::Kron);

    let ctx = ExperimentCtx::small();
    let spec = WorkloadSpec {
        algorithm,
        dataset,
        scale: ctx.scale,
    };
    println!("== prefetcher shootout: {spec} ==");
    let bundle = spec.build_trace_with_budget(ctx.budget);
    let base = run_workload(&bundle, &ctx.base, ctx.warmup);
    println!(
        "baseline: {} cycles, LLC MPKI {:.1}, BW util {:.1}%\n",
        base.core.cycles,
        base.llc_mpki(),
        100.0 * base.bandwidth_utilization()
    );

    let mut table = Table::new(vec![
        "config".into(),
        "speedup".into(),
        "L2 hit".into(),
        "LLC MPKI".into(),
        "struct acc".into(),
        "prop acc".into(),
        "BPKI".into(),
    ]);
    for kind in PrefetcherKind::EVALUATED {
        let r = run_workload(&bundle, &ctx.base.with_prefetcher(kind), ctx.warmup);
        table.row(vec![
            kind.name().into(),
            format!(
                "{:.2}x",
                base.core.cycles as f64 / r.core.cycles.max(1) as f64
            ),
            format!("{:.1}%", 100.0 * r.l2_hit_rate()),
            format!("{:.1}", r.llc_mpki()),
            format!("{:.0}%", 100.0 * r.prefetch_accuracy(DataType::Structure)),
            format!("{:.0}%", 100.0 * r.prefetch_accuracy(DataType::Property)),
            format!("{:.1}", r.bpki()),
        ]);
    }
    println!("{}", table.render());
    println!("paper Fig. 11: DROPLET leads on CC/PR/BC/SSSP; streamMPP1 on BFS and road.");
}
