//! Quickstart: build a graph, trace PageRank, and compare the no-prefetch
//! baseline against DROPLET.
//!
//! Run with: `cargo run --release --example quickstart`

use droplet::experiments::ExperimentCtx;
use droplet::{run_workload, PrefetcherKind};
use droplet_gap::Algorithm;
use droplet_graph::{Dataset, DegreeStats};

fn main() {
    // A small-scale context: ~32 K-vertex datasets against a hierarchy
    // shrunk proportionally, so the paper's cache-pressure behaviour shows
    // up in about a second.
    let ctx = ExperimentCtx::small();

    println!("== DROPLET quickstart ==");
    let spec = droplet::WorkloadSpec {
        algorithm: Algorithm::Pr,
        dataset: Dataset::Kron,
        scale: ctx.scale,
    };
    let graph = spec.build_graph();
    println!(
        "graph: {} ({} vertices, {} edges, {})",
        spec.dataset,
        graph.num_vertices(),
        graph.num_edges(),
        DegreeStats::of(&graph),
    );

    println!("tracing {} (budget {} ops)...", spec.algorithm, ctx.budget);
    let bundle = spec.build_trace_with_budget(ctx.budget);
    println!(
        "trace: {} memory ops, {} instructions",
        bundle.ops.len(),
        bundle.instructions
    );

    let base = run_workload(&bundle, &ctx.base, ctx.warmup);
    println!("\nbaseline (no prefetch):");
    println!("  cycles        {}", base.core.cycles);
    println!("  IPC           {:.3}", base.core.ipc());
    println!("  cycle stack   {}", base.core.cycle_stack);
    println!("  LLC MPKI      {:.1}", base.llc_mpki());
    println!("  L2 hit rate   {:.1}%", 100.0 * base.l2_hit_rate());

    let cfg = ctx.base.with_prefetcher(PrefetcherKind::Droplet);
    let drop = run_workload(&bundle, &cfg, ctx.warmup);
    println!("\nDROPLET (data-aware decoupled prefetcher):");
    println!("  cycles        {}", drop.core.cycles);
    println!("  IPC           {:.3}", drop.core.ipc());
    println!("  cycle stack   {}", drop.core.cycle_stack);
    println!("  LLC MPKI      {:.1}", drop.llc_mpki());
    println!("  L2 hit rate   {:.1}%", 100.0 * drop.l2_hit_rate());
    if let Some(mpp) = &drop.mpp {
        println!(
            "  MPP           scanned {} structure lines -> {} property prefetches",
            mpp.lines_scanned, mpp.candidates
        );
    }

    let speedup = base.core.cycles as f64 / drop.core.cycles.max(1) as f64;
    println!("\nspeedup over baseline: {speedup:.2}x");
    println!("(paper Fig. 11: DROPLET gains 19%-102% across algorithms)");
}
