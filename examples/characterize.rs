//! Workload characterization on one dataset: the paper's Section IV
//! analysis in miniature — cycle stack, instruction-window sensitivity,
//! load-load dependency chains, and the per-type hierarchy breakdown.
//!
//! Run with: `cargo run --release --example characterize`

use droplet::experiments::ExperimentCtx;
use droplet::report::{pct, Table};
use droplet::{run_workload, WorkloadSpec};
use droplet_cpu::analyze_chains;
use droplet_gap::Algorithm;
use droplet_graph::Dataset;
use droplet_trace::DataType;

fn main() {
    let ctx = ExperimentCtx::small();
    println!("== data-aware characterization (paper Section IV) ==\n");

    let mut stack_table = Table::new(vec![
        "workload".into(),
        "busy".into(),
        "DRAM stalls".into(),
        "MLP".into(),
        "4x-window speedup".into(),
    ]);
    let mut chain_table = Table::new(vec![
        "workload".into(),
        "loads in chains".into(),
        "mean len".into(),
        "struct producer".into(),
        "prop consumer".into(),
    ]);
    let mut usage_table = Table::new(vec![
        "workload".into(),
        "type".into(),
        "L1".into(),
        "L2".into(),
        "L3".into(),
        "DRAM".into(),
    ]);

    for algorithm in Algorithm::ALL {
        let spec = WorkloadSpec {
            algorithm,
            dataset: Dataset::Kron,
            scale: ctx.scale,
        };
        let bundle = spec.build_trace_with_budget(ctx.budget);
        let base = run_workload(&bundle, &ctx.base, ctx.warmup);
        let big = run_workload(&bundle, &ctx.base.clone().with_window_scale(4), ctx.warmup);
        stack_table.row(vec![
            spec.label(),
            pct(base.core.cycle_stack.busy_fraction()),
            pct(base.core.cycle_stack.dram_fraction()),
            format!("{:.2}", base.core.mlp.avg_outstanding),
            format!(
                "{:.3}x",
                base.core.cycles as f64 / big.core.cycles.max(1) as f64
            ),
        ]);

        let chains = analyze_chains(&bundle.ops, ctx.base.core.rob);
        chain_table.row(vec![
            spec.label(),
            pct(chains.chained_fraction()),
            format!("{:.2}", chains.mean_chain_len()),
            pct(chains.producer_fraction(DataType::Structure)),
            pct(chains.consumer_fraction(DataType::Property)),
        ]);

        for dt in DataType::ALL {
            let b = base.service_breakdown(dt);
            usage_table.row(vec![
                spec.label(),
                dt.to_string(),
                pct(b[0]),
                pct(b[1]),
                pct(b[2]),
                pct(b[3]),
            ]);
        }
    }

    println!("cycle stacks and window sensitivity (Figs. 1 & 3):");
    println!("{}", stack_table.render());
    println!("observation #1/#2: a 4x window buys almost nothing — short");
    println!("load-load dependency chains bound the MLP, not the ROB.\n");

    println!("dependency chains (Figs. 5 & 6):");
    println!("{}", chain_table.render());
    println!("observation #3: property data is the consumer; structure the producer.\n");

    println!("memory hierarchy usage by data type (Fig. 7):");
    println!("{}", usage_table.render());
    println!("observation #4/#6: the private L2 services almost nothing; structure");
    println!("reuse distances exceed the LLC, property lands in LLC + DRAM.");
}
