//! Road-network navigation: SSSP over a weighted road-like mesh — the
//! dataset where the paper finds `streamMPP1` (not DROPLET) to be the ideal
//! configuration, because the conventional streamer also captures property
//! prefetches on high-locality meshes (Section VII-C1).
//!
//! Run with: `cargo run --release --example road_navigation`

use droplet::experiments::ExperimentCtx;
use droplet::report::Table;
use droplet::{run_workload, PrefetcherKind, WorkloadSpec};
use droplet_gap::{pick_source, sssp, Algorithm};
use droplet_graph::Dataset;

fn main() {
    let ctx = ExperimentCtx::small();
    let spec = WorkloadSpec {
        algorithm: Algorithm::Sssp,
        dataset: Dataset::Road,
        scale: ctx.scale,
    };
    println!("== road navigation: delta-stepping SSSP on a road mesh ==");
    let graph = spec.build_graph();
    println!(
        "road mesh: {} intersections, {} road segments",
        graph.num_vertices(),
        graph.num_edges()
    );

    // Functional result first: distances from the hub intersection.
    let source = pick_source(&graph);
    let dist = sssp::reference(&graph);
    let reachable = dist.iter().filter(|&&d| d != sssp::INF).count();
    let max_dist = dist
        .iter()
        .filter(|&&d| d != sssp::INF)
        .max()
        .copied()
        .unwrap_or(0);
    println!("source intersection {source}: {reachable} reachable, farthest cost {max_dist}\n");

    // Architecture study: which prefetcher drives the navigation fastest?
    let bundle = spec.build_trace_with_budget(ctx.budget);
    let base = run_workload(&bundle, &ctx.base, ctx.warmup);
    let mut table = Table::new(vec!["config".into(), "cycles".into(), "speedup".into()]);
    table.row(vec![
        "baseline".into(),
        base.core.cycles.to_string(),
        "1.00x".into(),
    ]);
    for kind in [
        PrefetcherKind::Stream,
        PrefetcherKind::StreamMpp1,
        PrefetcherKind::Droplet,
    ] {
        let r = run_workload(&bundle, &ctx.base.with_prefetcher(kind), ctx.warmup);
        table.row(vec![
            kind.name().into(),
            r.core.cycles.to_string(),
            format!(
                "{:.2}x",
                base.core.cycles as f64 / r.core.cycles.max(1) as f64
            ),
        ]);
    }
    println!("{}", table.render());
    println!("paper Section VII-B: on road, streamMPP1 is the best performer —");
    println!("DROPLET could adaptively relax its data-awareness to match it.");
}
