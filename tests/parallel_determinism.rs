//! Parallel execution must be invisible in the results: `run_study` over
//! the worker pool has to produce bit-identical rows to the fully serial
//! path, and the `DROPLET_THREADS` override has to reach pools built from
//! the environment.
//!
//! These tests set `DROPLET_THREADS`, so they live in their own test
//! binary: integration tests in one binary share a process (and its
//! environment) across concurrently running tests.

use droplet::experiments::prefetch_study::{run_study, StudyRow};
use droplet::experiments::ExperimentCtx;
use droplet::pool::{JobPool, THREADS_ENV};
use droplet::PrefetcherKind;
use std::sync::Mutex;

const KINDS: [PrefetcherKind; 2] = [PrefetcherKind::Stream, PrefetcherKind::Droplet];

/// Both tests mutate `DROPLET_THREADS`; the harness runs tests on
/// concurrent threads of one process, so serialize the env accesses.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// Exact comparison — determinism means bit-identical floats, not just
/// approximately equal metrics.
fn assert_rows_identical(a: &[StudyRow], b: &[StudyRow]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.label, y.label);
        assert_eq!(x.algorithm, y.algorithm);
        assert_eq!(x.kind, y.kind);
        assert_eq!(x.cycles, y.cycles, "{} / {:?}", x.label, x.kind);
        assert_eq!(x.speedup.to_bits(), y.speedup.to_bits());
        assert_eq!(x.l2_hit_rate.to_bits(), y.l2_hit_rate.to_bits());
        for i in 0..3 {
            assert_eq!(
                x.llc_mpki_by_type[i].to_bits(),
                y.llc_mpki_by_type[i].to_bits()
            );
            assert_eq!(
                x.accuracy_by_type[i].to_bits(),
                y.accuracy_by_type[i].to_bits()
            );
        }
        assert_eq!(x.bpki.to_bits(), y.bpki.to_bits());
    }
}

#[test]
fn study_is_identical_serial_vs_parallel() {
    // Serial via env override, parallel via an explicit 4-worker pool; both
    // share one process-wide graph cache but separate trace caches.
    let serial_ctx = {
        let _env = ENV_LOCK.lock().unwrap();
        std::env::set_var(THREADS_ENV, "1");
        let ctx = ExperimentCtx::tiny();
        std::env::remove_var(THREADS_ENV);
        ctx
    };
    assert_eq!(serial_ctx.pool.threads(), 1);
    let serial = run_study(&serial_ctx, &KINDS);

    let parallel_ctx = ExperimentCtx::tiny().with_threads(4);
    let parallel = run_study(&parallel_ctx, &KINDS);

    assert_rows_identical(&serial.baselines, &parallel.baselines);
    assert_rows_identical(&serial.rows, &parallel.rows);
}

#[test]
fn env_override_controls_pool_width() {
    let _env = ENV_LOCK.lock().unwrap();
    std::env::set_var(THREADS_ENV, "3");
    assert_eq!(JobPool::from_env().threads(), 3);
    // Garbage and zero fall back to available parallelism (>= 1).
    std::env::set_var(THREADS_ENV, "0");
    assert!(JobPool::from_env().threads() >= 1);
    std::env::set_var(THREADS_ENV, "not-a-number");
    assert!(JobPool::from_env().threads() >= 1);
    std::env::remove_var(THREADS_ENV);
}
