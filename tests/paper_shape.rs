//! Shape tests: the paper's qualitative findings must reproduce at test
//! scale (tiny datasets against the proportionally shrunk hierarchy).
//! Absolute numbers are not asserted — who wins, in which direction, and
//! by roughly what kind of margin are.

use droplet::experiments::ExperimentCtx;
use droplet::{run_workload, PrefetcherKind, RunResult, WorkloadSpec};
use droplet_cpu::analyze_chains;
use droplet_gap::Algorithm;
use droplet_graph::Dataset;
use droplet_trace::DataType;

fn run(algorithm: Algorithm, dataset: Dataset, kind: PrefetcherKind) -> RunResult {
    let ctx = ExperimentCtx::tiny();
    let spec = WorkloadSpec {
        algorithm,
        dataset,
        scale: ctx.scale,
    };
    let bundle = spec.build_trace_with_budget(ctx.budget);
    run_workload(&bundle, &ctx.base.with_prefetcher(kind), ctx.warmup)
}

/// Observation of Fig. 1: graph analytics is DRAM-stall dominated.
#[test]
fn cycle_stacks_are_memory_bound() {
    for dataset in [Dataset::Kron, Dataset::Orkut] {
        let r = run(Algorithm::Pr, dataset, PrefetcherKind::None);
        let stack = r.core.cycle_stack;
        assert!(
            stack.dram_fraction() > 0.3,
            "PR-{dataset} should be DRAM-bound: {stack}"
        );
        assert!(
            stack.busy_fraction() < 0.5,
            "PR-{dataset} should not be compute-bound: {stack}"
        );
    }
}

/// Observation #1: a 4× instruction window buys almost nothing.
#[test]
fn bigger_window_gains_little() {
    let ctx = ExperimentCtx::tiny();
    for algorithm in [Algorithm::Pr, Algorithm::Cc] {
        let spec = WorkloadSpec {
            algorithm,
            dataset: Dataset::Kron,
            scale: ctx.scale,
        };
        let bundle = spec.build_trace_with_budget(ctx.budget);
        let base = run_workload(&bundle, &ctx.base, ctx.warmup);
        let big = run_workload(&bundle, &ctx.base.clone().with_window_scale(4), ctx.warmup);
        let speedup = base.core.cycles as f64 / big.core.cycles.max(1) as f64;
        // The paper reports +1.44% on average; our lean traces (no
        // scaffolding instructions) show somewhat more, but quadrupling the
        // window resources must still yield a disproportionately small win.
        assert!(
            speedup < 1.2,
            "{algorithm}: 4x window speedup {speedup} is too large — chains should bind"
        );
    }
}

/// Observations #2/#3: chains are short, property consumes, structure produces.
#[test]
fn dependency_chain_shape() {
    let ctx = ExperimentCtx::tiny();
    let mut chained = Vec::new();
    for algorithm in Algorithm::ALL {
        let spec = WorkloadSpec {
            algorithm,
            dataset: Dataset::Urand,
            scale: ctx.scale,
        };
        let bundle = spec.build_trace_with_budget(ctx.budget);
        let rep = analyze_chains(&bundle.ops, 128);
        chained.push(rep.chained_fraction());
        assert!(
            rep.mean_chain_len() >= 2.0 && rep.mean_chain_len() < 6.0,
            "{algorithm}: chains should be short, got {}",
            rep.mean_chain_len()
        );
        assert!(
            rep.consumer_fraction(DataType::Property) > rep.producer_fraction(DataType::Property),
            "{algorithm}: property must be mostly a consumer"
        );
        assert!(
            rep.producer_fraction(DataType::Structure) > rep.consumer_fraction(DataType::Structure),
            "{algorithm}: structure must be mostly a producer"
        );
    }
    // Our traces model only the algorithmically meaningful loads; real
    // binaries dilute the chained fraction with register-spill and loop
    // scaffolding loads, which is why the paper reports 43.2% while lean
    // traces sit higher (recorded in EXPERIMENTS.md).
    let mean = chained.iter().sum::<f64>() / chained.len() as f64;
    assert!(
        (0.25..0.97).contains(&mean),
        "mean chained fraction {mean} out of plausible range"
    );
}

/// Observation #4: the private L2 is nearly useless in the baseline.
#[test]
fn baseline_l2_is_underutilized() {
    let r = run(Algorithm::Pr, Dataset::Kron, PrefetcherKind::None);
    assert!(
        r.l2_hit_rate() < 0.5,
        "baseline L2 hit rate {} should be low",
        r.l2_hit_rate()
    );
}

/// Observation #5/#6: property responds to LLC capacity; structure does not.
#[test]
fn llc_capacity_helps_property_not_structure() {
    let ctx = ExperimentCtx::tiny();
    let spec = WorkloadSpec {
        algorithm: Algorithm::Pr,
        dataset: Dataset::Urand,
        scale: ctx.scale,
    };
    let bundle = spec.build_trace_with_budget(ctx.budget);
    let sweep = ctx.llc_sweep();
    // Compare the first doubling only: at the top of the tiny sweep the
    // whole (scaled) structure array fits, which full-size graphs never do.
    let mut small_cfg = ctx.base.clone();
    small_cfg.l3 = sweep[0].clone();
    let mut big_cfg = ctx.base.clone();
    big_cfg.l3 = sweep[1].clone();
    let small = run_workload(&bundle, &small_cfg, ctx.warmup);
    let big = run_workload(&bundle, &big_cfg, ctx.warmup);
    let prop_gain =
        small.offchip_fraction(DataType::Property) - big.offchip_fraction(DataType::Property);
    let struct_gain =
        small.offchip_fraction(DataType::Structure) - big.offchip_fraction(DataType::Structure);
    assert!(
        prop_gain > 0.0,
        "a larger LLC must reduce property off-chip accesses ({prop_gain})"
    );
    assert!(
        prop_gain + 1e-9 >= struct_gain,
        "property should benefit at least as much as structure: {prop_gain} vs {struct_gain}"
    );
}

/// Fig. 11 directionality: DROPLET wins on the sequential-order algorithms.
#[test]
fn droplet_beats_stream_on_cc_and_pr() {
    for algorithm in [Algorithm::Cc, Algorithm::Pr] {
        let stream = run(algorithm, Dataset::Kron, PrefetcherKind::Stream);
        let droplet = run(algorithm, Dataset::Kron, PrefetcherKind::Droplet);
        assert!(
            droplet.core.cycles < stream.core.cycles,
            "{algorithm}: DROPLET {} vs stream {}",
            droplet.core.cycles,
            stream.core.cycles
        );
    }
}

/// Fig. 11: every evaluated configuration beats the baseline on CC-kron
/// (the workload where prefetching helps most).
#[test]
fn all_prefetchers_help_cc() {
    let base = run(Algorithm::Cc, Dataset::Kron, PrefetcherKind::None);
    for kind in [
        PrefetcherKind::Stream,
        PrefetcherKind::StreamMpp1,
        PrefetcherKind::Droplet,
        PrefetcherKind::MonoDropletL1,
    ] {
        let r = run(Algorithm::Cc, Dataset::Kron, kind);
        assert!(
            r.core.cycles < base.core.cycles,
            "{kind} should beat baseline on CC: {} vs {}",
            r.core.cycles,
            base.core.cycles
        );
    }
}

/// Fig. 12: DROPLET converts the idle L2 into a useful resource.
#[test]
fn droplet_lifts_l2_hit_rate_substantially() {
    let base = run(Algorithm::Pr, Dataset::Kron, PrefetcherKind::None);
    let droplet = run(Algorithm::Pr, Dataset::Kron, PrefetcherKind::Droplet);
    assert!(
        droplet.l2_hit_rate() > base.l2_hit_rate() + 0.05,
        "L2 hit rate {} -> {}",
        base.l2_hit_rate(),
        droplet.l2_hit_rate()
    );
}

/// Fig. 13: streamMPP1 reduces property MPKI relative to stream alone.
#[test]
fn mpp_reduces_property_mpki() {
    let stream = run(Algorithm::Pr, Dataset::Kron, PrefetcherKind::Stream);
    let with_mpp = run(Algorithm::Pr, Dataset::Kron, PrefetcherKind::StreamMpp1);
    assert!(
        with_mpp.llc_mpki_of(DataType::Property) < stream.llc_mpki_of(DataType::Property),
        "property MPKI: streamMPP1 {} vs stream {}",
        with_mpp.llc_mpki_of(DataType::Property),
        stream.llc_mpki_of(DataType::Property)
    );
}

/// Fig. 14: CC's sequential structure stream is the most prefetchable.
#[test]
fn cc_structure_accuracy_is_near_perfect() {
    let r = run(Algorithm::Cc, Dataset::Kron, PrefetcherKind::Droplet);
    let acc = r.prefetch_accuracy(DataType::Structure);
    assert!(acc > 0.75, "CC structure accuracy {acc} (paper: 100%)");
}

/// Fig. 15: prefetching costs bounded extra bandwidth, not a blow-up.
#[test]
fn droplet_bandwidth_overhead_is_bounded() {
    let base = run(Algorithm::Pr, Dataset::Kron, PrefetcherKind::None);
    let droplet = run(Algorithm::Pr, Dataset::Kron, PrefetcherKind::Droplet);
    let overhead = droplet.bpki() / base.bpki().max(1e-9) - 1.0;
    assert!(
        overhead < 0.6,
        "DROPLET bandwidth overhead {overhead} too large (paper: 6.5-19.9%)"
    );
}
