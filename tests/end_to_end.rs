//! Cross-crate integration tests: traced workloads equal their reference
//! implementations, and the full system simulator upholds its structural
//! invariants end to end.

use droplet::experiments::ExperimentCtx;
use droplet::{run_workload, PrefetcherKind, SystemConfig, WorkloadSpec};
use droplet_gap::{bc, bfs, cc, pr, sssp, Algorithm, Digest};
use droplet_graph::{Dataset, DatasetScale};
use droplet_trace::DataType;
use std::sync::Arc;

fn tiny(dataset: Dataset, weighted: bool) -> Arc<droplet_graph::Csr> {
    Arc::new(if weighted {
        dataset.build_weighted(DatasetScale::Tiny)
    } else {
        dataset.build(DatasetScale::Tiny)
    })
}

#[test]
fn traced_pr_equals_reference_on_every_dataset() {
    for dataset in Dataset::ALL {
        let g = tiny(dataset, false);
        let bundle = Algorithm::Pr.trace(&g, u64::MAX);
        assert!(bundle.completed, "{dataset}: budget must not bind");
        assert_eq!(
            bundle.digest,
            Digest::Floats(pr::reference(&g)),
            "{dataset}: traced PR diverged"
        );
    }
}

#[test]
fn traced_bfs_equals_reference_on_every_dataset() {
    for dataset in Dataset::ALL {
        let g = tiny(dataset, false);
        let bundle = Algorithm::Bfs.trace(&g, u64::MAX);
        assert!(bundle.completed);
        assert_eq!(bundle.digest, Digest::Ints(bfs::reference(&g)), "{dataset}");
    }
}

#[test]
fn traced_cc_equals_reference_on_every_dataset() {
    for dataset in Dataset::ALL {
        let g = tiny(dataset, false);
        let bundle = Algorithm::Cc.trace(&g, u64::MAX);
        assert!(bundle.completed);
        assert_eq!(bundle.digest, Digest::Ints(cc::reference(&g)), "{dataset}");
    }
}

#[test]
fn traced_sssp_equals_reference_on_every_dataset() {
    for dataset in Dataset::ALL {
        let g = tiny(dataset, true);
        let bundle = Algorithm::Sssp.trace(&g, u64::MAX);
        assert!(bundle.completed);
        assert_eq!(
            bundle.digest,
            Digest::Ints(sssp::reference(&g)),
            "{dataset}"
        );
    }
}

#[test]
fn traced_bc_equals_reference_on_every_dataset() {
    for dataset in Dataset::ALL {
        let g = tiny(dataset, false);
        let bundle = Algorithm::Bc.trace(&g, u64::MAX);
        assert!(bundle.completed);
        assert_eq!(
            bundle.digest,
            Digest::Floats(bc::reference(&g)),
            "{dataset}"
        );
    }
}

#[test]
fn every_trace_is_dominated_by_typed_memory_ops() {
    for algorithm in Algorithm::ALL {
        let g = tiny(Dataset::Kron, algorithm.needs_weights());
        let bundle = algorithm.trace(&g, 100_000);
        assert!(!bundle.is_empty(), "{algorithm}");
        // Structure and property ops must both be present; loads dominate.
        let structure = bundle
            .ops
            .iter()
            .filter(|o| o.dtype() == DataType::Structure)
            .count();
        let property = bundle
            .ops
            .iter()
            .filter(|o| o.dtype() == DataType::Property)
            .count();
        let loads = bundle.ops.iter().filter(|o| o.is_load()).count();
        assert!(structure > 0 && property > 0, "{algorithm}");
        assert!(
            loads * 2 > bundle.len(),
            "{algorithm}: loads should dominate"
        );
        assert!(bundle.instructions >= bundle.len() as u64);
    }
}

#[test]
fn simulation_is_deterministic() {
    let ctx = ExperimentCtx::tiny();
    let spec = WorkloadSpec {
        algorithm: Algorithm::Pr,
        dataset: Dataset::Urand,
        scale: ctx.scale,
    };
    let bundle_a = spec.build_trace_with_budget(ctx.budget);
    let bundle_b = spec.build_trace_with_budget(ctx.budget);
    assert_eq!(
        bundle_a.ops, bundle_b.ops,
        "trace generation must be deterministic"
    );
    let cfg = ctx.base.with_prefetcher(PrefetcherKind::Droplet);
    let a = run_workload(&bundle_a, &cfg, ctx.warmup);
    let b = run_workload(&bundle_b, &cfg, ctx.warmup);
    assert_eq!(a.core.cycles, b.core.cycles);
    assert_eq!(a.dram.total_accesses(), b.dram.total_accesses());
}

#[test]
fn hierarchy_counters_are_conserved_across_all_configs() {
    let ctx = ExperimentCtx::tiny();
    for algorithm in [Algorithm::Pr, Algorithm::Bfs, Algorithm::Sssp] {
        let spec = WorkloadSpec {
            algorithm,
            dataset: Dataset::Kron,
            scale: ctx.scale,
        };
        let bundle = spec.build_trace_with_budget(ctx.budget);
        for kind in std::iter::once(PrefetcherKind::None).chain(PrefetcherKind::EVALUATED) {
            let r = run_workload(&bundle, &ctx.base.with_prefetcher(kind), ctx.warmup);
            let l2 = r.l2.expect("baseline config has an L2");
            assert_eq!(
                r.l1.demand_misses().total(),
                l2.demand_accesses.total(),
                "{algorithm}/{kind}: L1 misses vs L2 accesses"
            );
            assert_eq!(
                l2.demand_misses().total(),
                r.l3.demand_accesses.total(),
                "{algorithm}/{kind}: L2 misses vs L3 accesses"
            );
            assert_eq!(
                r.dram.demand_accesses,
                r.l3.demand_misses().total() + r.sys.writebacks,
                "{algorithm}/{kind}: DRAM demand accounting"
            );
        }
    }
}

#[test]
fn warmup_window_changes_only_statistics_not_behaviour() {
    let ctx = ExperimentCtx::tiny();
    let spec = WorkloadSpec {
        algorithm: Algorithm::Pr,
        dataset: Dataset::Urand,
        scale: ctx.scale,
    };
    let bundle = spec.build_trace_with_budget(ctx.budget);
    let cfg = SystemConfig::test_scale().with_prefetcher(PrefetcherKind::Droplet);
    let warmup = ctx.warmup.min(bundle.ops.len() / 2);
    let full = run_workload(&bundle, &cfg, 0);
    let windowed = run_workload(&bundle, &cfg, warmup);
    // The windowed run measures a suffix of the same execution.
    assert!(windowed.core.cycles < full.core.cycles);
    assert!(windowed.core.instructions < full.core.instructions);
    assert!(windowed.dram.total_accesses() <= full.dram.total_accesses());
}

#[test]
fn bc_registers_multi_property_targets_and_mpp_uses_them() {
    let g = tiny(Dataset::Kron, false);
    let bundle = Algorithm::Bc.trace(&g, 150_000);
    assert_eq!(
        bundle.extra_property_targets.len(),
        2,
        "BC must register sigma and delta as extra MPP targets"
    );
    let ctx = ExperimentCtx::tiny();
    let r = run_workload(
        &bundle,
        &ctx.base.with_prefetcher(PrefetcherKind::Droplet),
        1_000,
    );
    let mpp = r.mpp.expect("DROPLET has an MPP");
    // With three targets per scanned ID, candidates comfortably exceed the
    // per-line ID count.
    assert!(
        mpp.candidates > mpp.lines_scanned,
        "candidates {} vs lines {}",
        mpp.candidates,
        mpp.lines_scanned
    );
}

#[test]
fn bfs_direction_optimization_creates_structure_streams() {
    // Bottom-up sweeps scan neighbor lists sequentially; a kron-like graph
    // must trigger at least one such phase, giving the streamer material.
    let g = tiny(Dataset::Kron, false);
    let bundle = Algorithm::Bfs.trace(&g, u64::MAX);
    let ctx = ExperimentCtx::tiny();
    let r = run_workload(
        &bundle,
        &ctx.base.with_prefetcher(PrefetcherKind::Droplet),
        1_000,
    );
    assert!(
        r.dram.prefetch_accesses > 0,
        "the data-aware streamer should find structure streams in BFS"
    );
}

#[test]
fn mono_variant_times_property_prefetch_later_than_droplet() {
    // The decoupled design's whole point: property prefetches issue from
    // the MC, not after the refill path — DROPLET must not be slower than
    // the monolithic arrangement on the canonical PR workload.
    let ctx = ExperimentCtx::tiny();
    let spec = WorkloadSpec {
        algorithm: Algorithm::Pr,
        dataset: Dataset::Kron,
        scale: ctx.scale,
    };
    let bundle = spec.build_trace_with_budget(ctx.budget);
    let droplet = run_workload(
        &bundle,
        &ctx.base.with_prefetcher(PrefetcherKind::Droplet),
        ctx.warmup,
    );
    let mono = run_workload(
        &bundle,
        &ctx.base.with_prefetcher(PrefetcherKind::MonoDropletL1),
        ctx.warmup,
    );
    assert!(
        droplet.core.cycles <= mono.core.cycles * 102 / 100,
        "decoupled {} vs monolithic {}",
        droplet.core.cycles,
        mono.core.cycles
    );
}
