//! Forked sweeps must be deterministic in everything but wall time: the
//! same cells produce bit-identical results whether the pool runs one
//! worker or four, and whether warm-up is shared or replayed per cell.
//! (Mirrors `parallel_determinism.rs`, which pins the same property for
//! the unforked driver path.)

use droplet::gap::Algorithm;
use droplet::graph::{Dataset, DatasetScale};
use droplet::{run_sweep, JobPool, PrefetcherKind, RunResult, SweepCell, SystemConfig};
use std::sync::Arc;

/// Digest of everything deterministic in a result (manifest lineage and
/// wall time excluded so forked and replayed runs can be compared too).
fn digest(r: &RunResult) -> u64 {
    let repr = format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{}|{}",
        r.core,
        r.l1,
        r.l2,
        r.l3,
        r.dram,
        r.mpp,
        r.sys,
        r.warmup_boundary_cycle,
        r.warmup_ops_applied,
    );
    droplet::obs::fnv1a(repr.as_bytes())
}

fn cells() -> Vec<SweepCell> {
    let g = Arc::new(Dataset::Kron.build(DatasetScale::Tiny));
    let pr = Arc::new(Algorithm::Pr.trace(&g, 80_000));
    let bfs = Arc::new(Algorithm::Bfs.trace(&g, 60_000));
    let base = SystemConfig::test_scale();
    let mut cells = Vec::new();
    // Two bundles × four configs: two shared-warmup groups, fanned
    // interleaved so phase-B scheduling differs across thread counts.
    for bundle in [&pr, &bfs] {
        for kind in [
            PrefetcherKind::None,
            PrefetcherKind::Stream,
            PrefetcherKind::Droplet,
            PrefetcherKind::AdaptiveDroplet,
        ] {
            cells.push(SweepCell {
                bundle: Arc::clone(bundle),
                cfg: base.with_prefetcher(kind),
            });
        }
    }
    cells
}

#[test]
fn forked_sweep_is_thread_count_invariant() {
    let cells = cells();
    let serial: Vec<u64> = run_sweep(&JobPool::with_threads(1), &cells, 10_000, true)
        .iter()
        .map(digest)
        .collect();
    let parallel: Vec<u64> = run_sweep(&JobPool::with_threads(4), &cells, 10_000, true)
        .iter()
        .map(digest)
        .collect();
    assert_eq!(
        serial, parallel,
        "forked sweep results depend on the thread count"
    );
}

#[test]
fn forked_sweep_matches_unforked_sweep() {
    let cells = cells();
    let pool = JobPool::with_threads(4);
    let forked = run_sweep(&pool, &cells, 10_000, true);
    let full = run_sweep(&pool, &cells, 10_000, false);
    for (i, (f, r)) in forked.iter().zip(&full).enumerate() {
        assert_eq!(digest(f), digest(r), "cell {i}: fork != full replay");
        assert!(f.manifest.forked_from.is_some(), "cell {i} did not fork");
        assert!(r.manifest.forked_from.is_none());
    }
}
