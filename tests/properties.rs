//! Property-based tests (proptest) on the core data structures and
//! cross-crate invariants.

use droplet::{run_workload, PrefetcherKind, SystemConfig};
use droplet_cache::{CacheConfig, FillInfo, ReuseProfiler, SetAssocCache};
use droplet_gap::Algorithm;
use droplet_graph::{CsrBuilder, DegreeStats};
use droplet_trace::{AddressSpace, DataType, PageTable, Tlb, VirtAddr};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// CSR round trip: every inserted edge is retrievable, in order.
    #[test]
    fn csr_preserves_all_edges(edges in prop::collection::vec((0u32..50, 0u32..50), 0..300)) {
        let mut b = CsrBuilder::new(50);
        for &(u, v) in &edges {
            b.push_edge(u, v);
        }
        let g = b.build();
        prop_assert_eq!(g.num_edges(), edges.len() as u64);
        // Per-source multiset matches.
        for u in 0..50u32 {
            let mut expect: Vec<u32> = edges.iter().filter(|e| e.0 == u).map(|e| e.1).collect();
            let mut got = g.neighbors(u).to_vec();
            expect.sort_unstable();
            got.sort_unstable();
            prop_assert_eq!(got, expect);
        }
        let stats = DegreeStats::of(&g);
        prop_assert!(stats.max >= stats.min);
    }

    /// Transpose is an involution on deduped graphs.
    #[test]
    fn transpose_involution(edges in prop::collection::vec((0u32..40, 0u32..40), 0..200)) {
        let mut b = CsrBuilder::new(40);
        for &(u, v) in &edges {
            b.push_edge(u, v);
        }
        let g = b.dedup().build();
        prop_assert_eq!(g.transpose().transpose(), g);
    }

    /// LRU cache vs a naive model: hits and misses agree exactly.
    #[test]
    fn cache_matches_naive_lru(lines in prop::collection::vec(0u64..64, 1..400)) {
        let cfg = CacheConfig {
            name: "t",
            size_bytes: 16 * 64, // 16 lines
            assoc: 4,            // 4 sets x 4 ways
            tag_latency: 1,
            data_latency: 1,
            policy: droplet_cache::ReplacementPolicy::Lru,
        };
        let sets = cfg.num_sets() as u64;
        let mut cache = SetAssocCache::new(cfg);
        // Naive model: per set, a vector in LRU order (front = LRU).
        let mut model: Vec<Vec<u64>> = vec![Vec::new(); sets as usize];
        for (i, &line) in lines.iter().enumerate() {
            let set = (line % sets) as usize;
            let model_hit = model[set].contains(&line);
            let got_hit = cache.touch(line, i as u64, DataType::Property, false).is_some();
            prop_assert_eq!(got_hit, model_hit, "access #{} line {}", i, line);
            if model_hit {
                let pos = model[set].iter().position(|&l| l == line).unwrap();
                model[set].remove(pos);
                model[set].push(line);
            } else {
                cache.fill(line, FillInfo::demand(DataType::Property, i as u64));
                if model[set].len() == 4 {
                    model[set].remove(0);
                }
                model[set].push(line);
            }
        }
        prop_assert_eq!(cache.occupancy(), model.iter().map(Vec::len).sum::<usize>());
    }

    /// Reuse profiler against the quadratic oracle.
    #[test]
    fn reuse_distance_matches_oracle(stream in prop::collection::vec(0u64..24, 1..120)) {
        let mut profiler = ReuseProfiler::new();
        for &l in &stream {
            profiler.access(l, DataType::Structure);
        }
        // Oracle: cold count and per-capacity capturable fractions.
        let mut cold = 0u64;
        let mut distances: Vec<u64> = Vec::new();
        for (i, &l) in stream.iter().enumerate() {
            match stream[..i].iter().rposition(|&x| x == l) {
                None => cold += 1,
                Some(p) => {
                    let mut uniq: Vec<u64> = stream[p + 1..i].to_vec();
                    uniq.sort_unstable();
                    uniq.dedup();
                    distances.push(uniq.len() as u64);
                }
            }
        }
        let h = profiler.histogram(DataType::Structure);
        prop_assert_eq!(h.cold(), cold);
        prop_assert_eq!(h.reuses(), distances.len() as u64);
        // Full capture at a capacity bigger than every distance.
        if !distances.is_empty() {
            let max = *distances.iter().max().unwrap();
            prop_assert_eq!(h.capturable_by((max + 2).next_power_of_two()), 1.0);
        }
    }

    /// TLB never exceeds capacity and a hit always follows its own fill.
    #[test]
    fn tlb_capacity_and_residency(vpns in prop::collection::vec(0u64..40, 1..200), cap in 1usize..16) {
        let mut tlb = Tlb::new(cap);
        for &vpn in &vpns {
            let entry = droplet_trace::PageEntry { frame: vpn + 1, structure: vpn % 2 == 0 };
            let before = tlb.probe(vpn).is_some();
            let hit = tlb.access(vpn, || entry).is_some();
            prop_assert_eq!(hit, before, "hit iff already resident");
            prop_assert!(tlb.len() <= cap);
            prop_assert!(tlb.probe(vpn).is_some(), "just-accessed entry must be resident");
        }
    }

    /// Page-table translation is a bijection per page: distinct virtual
    /// pages get distinct frames; offsets are preserved.
    #[test]
    fn page_table_translation_sound(offsets in prop::collection::vec(0u64..(1 << 16), 1..80)) {
        let mut space = AddressSpace::new();
        let region = space.alloc("blob", DataType::Property, 1 << 16);
        let mut pt = PageTable::new();
        let mut frame_of = std::collections::HashMap::new();
        for &off in &offsets {
            let va = region.base().add_bytes(off);
            let (pa, _) = pt.translate(va, &space);
            prop_assert_eq!(pa.page_offset(), va.page_offset());
            let prev = frame_of.insert(va.page_number(), pa.frame_number());
            if let Some(f) = prev {
                prop_assert_eq!(f, pa.frame_number(), "mapping must be stable");
            }
        }
        let mut frames: Vec<u64> = frame_of.values().copied().collect();
        frames.sort_unstable();
        frames.dedup();
        prop_assert_eq!(frames.len(), frame_of.len(), "frames must be distinct");
    }
}

proptest! {
    // Whole-system property tests are expensive; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For arbitrary small random graphs, traced algorithms agree with
    /// their references, and the simulator's conservation laws hold under
    /// every prefetcher.
    #[test]
    fn system_invariants_on_random_graphs(seed in 0u64..1000) {
        let g = Arc::new(droplet_graph::gen::uniform(512, 4096, seed));
        let bundle = Algorithm::Pr.trace(&g, 120_000);
        let wg = Arc::new(droplet_graph::gen::uniform_weighted(512, 4096, seed));
        let sbundle = Algorithm::Sssp.trace(&wg, 120_000);
        for bundle in [&bundle, &sbundle] {
            for kind in [PrefetcherKind::None, PrefetcherKind::Droplet, PrefetcherKind::Ghb] {
                let cfg = SystemConfig::test_scale().with_prefetcher(kind);
                let r = run_workload(bundle, &cfg, 1000);
                let l2 = r.l2.unwrap();
                prop_assert_eq!(r.l1.demand_misses().total(), l2.demand_accesses.total());
                prop_assert_eq!(l2.demand_misses().total(), r.l3.demand_accesses.total());
                prop_assert!(r.core.cycles > 0);
                prop_assert!(r.core.ipc() <= 4.0 + 1e-9, "IPC cannot exceed width");
            }
        }
    }

    /// Prefetch accuracy is a well-formed ratio for every configuration.
    #[test]
    fn accuracy_is_a_ratio(seed in 0u64..500) {
        let g = Arc::new(droplet_graph::gen::rmat(9, 8, droplet_graph::gen::RmatSkew::Kron, seed));
        let bundle = Algorithm::Cc.trace(&g, 100_000);
        for kind in PrefetcherKind::EVALUATED {
            let cfg = SystemConfig::test_scale().with_prefetcher(kind);
            let r = run_workload(&bundle, &cfg, 1000);
            for dt in DataType::ALL {
                let a = r.prefetch_accuracy(dt);
                prop_assert!((0.0..=1.0).contains(&a), "{}/{}: {}", kind, dt, a);
            }
        }
    }
}

/// A plain (non-proptest) sanity anchor: VirtAddr arithmetic is total over
/// interesting boundaries.
#[test]
fn virt_addr_boundaries() {
    for raw in [0u64, 63, 64, 4095, 4096, u32::MAX as u64] {
        let a = VirtAddr::new(raw);
        assert_eq!(a.line_base().raw() % 64, 0);
        assert!(a.line_offset() < 64);
        assert!(a.page_offset() < 4096);
    }
}
